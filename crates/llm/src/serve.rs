//! Batched request serving on top of the decode pipeline.
//!
//! The kernel substrate already speaks the serving shapes — one shared
//! K-decode feeds a whole batch of queries
//! ([`Backend::run_attention_ragged`]), and a multi-row linear rides the
//! panel-blocked GeMM ([`Backend::run_gemm`]) — so what this module adds
//! is the machinery that *keeps those batches full under traffic*
//! (EVA's decode-centric interface, PAPERS.md):
//!
//! * **admission** — [`Server::submit`] accepts a [`DecodeRequest`] into a
//!   bounded FIFO queue ([`ServeConfig::max_queue`]) or rejects it
//!   explicitly; nothing is ever dropped silently;
//! * **continuous batch formation** — every [`Server::step`] re-forms the
//!   decode batch: finished requests leave their slot, queued ones take
//!   it, up to [`ServeConfig::max_batch`] in flight;
//! * **per-tenant KV ownership** — each request owns a [`KvCache`]
//!   descriptor (its position in the shared context, validated growth),
//!   while all tenants share one quantized context ([`SharedContext`]),
//!   one `PlanCache`, and one backend through the [`Pipeline`];
//! * **a deterministic driver** — [`Server::step`] is synchronous and
//!   side-effect-free beyond its own state, so tests can single-step the
//!   scheduler and a bench can meter tokens/second; an async/tokio driver
//!   can wrap it later without touching the scheduling logic;
//! * **multi-context batches** — the [`multi`] module generalizes all of
//!   the above to a registry of contexts ([`MultiServer`], what
//!   `vq_llm::Engine` wraps): requests are tagged with a
//!   [`ContextHandle`], slots and the queue are shared engine-wide, and
//!   each step runs one ragged-attention + one GeMM pass **per live
//!   context group**, with measured-profile feedback replanning a
//!   context's canonical plans when its access distribution shifts.
//!   [`Server`] itself is now a thin single-context view over it.
//!
//! Numerically the scheduler is *invisible*: each step runs one canonical
//! ragged-attention plan and one canonical linear plan at whatever batch
//! happens to be live, and both kernels are bitwise lane-stable across
//! batch widths — a request decoded in a full batch produces exactly the
//! bytes it would produce running alone (`tests/serving.rs` pins this).
//!
//! [`Backend::run_attention_ragged`]: vqllm_kernels::backend::Backend::run_attention_ragged
//! [`Backend::run_gemm`]: vqllm_kernels::backend::Backend::run_gemm
//! [`KvCache`]: crate::KvCache
//! [`Pipeline`]: crate::Pipeline

pub mod fair;
pub mod multi;
pub mod request;
pub mod scheduler;
pub mod slo;
pub mod tenant_kv;

pub use fair::FairQueue;
pub use multi::{ContextHandle, ContextStats, MultiServer, ProfileConfig, REJECTED_TOMBSTONE_CAP};
pub use request::{
    DecodeRequest, RejectReason, RequestHandle, RequestId, RequestOutput, RequestStatus,
};
pub use scheduler::{Server, ServerStats, StepReport};
pub use slo::SloEstimator;
pub use tenant_kv::TenantKv;

use crate::{LlmError, Result};
use std::sync::Arc;
use vqllm_vq::QuantizedTensor;

/// How a request's **live** (appended) KV rows are stored.
///
/// The historical serving path is teacher-forced decode: requests attend
/// growing prefixes of the shared pre-quantized context and own no live
/// KV at all — that is [`KvQuantMode::Off`], the default, and it is
/// bitwise untouched by the live-KV machinery. The live modes give each
/// request a private cache of its decoded rows (each step's output row
/// becomes the next step's appended K/V row), attended after the fixed
/// context prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvQuantMode {
    /// No live per-tenant KV (teacher-forced decode over the shared
    /// context only). The default.
    Off,
    /// Live per-tenant KV kept entirely in f32 — never folded. The
    /// accuracy/bitwise baseline the quantized mode is measured against.
    F32Tail,
    /// Live per-tenant KV with online VQ: the newest `tail_window` rows
    /// stay f32; older rows are folded into packed codes group-wise
    /// against the **context's** codebooks (amortized codebook reuse, no
    /// per-token re-clustering), with a per-group exact-residual outlier
    /// channel.
    Quantized {
        /// Rows kept unquantized at the hot end of the cache. Folding
        /// happens once the tail exceeds this window.
        tail_window: usize,
        /// Outlier threshold in thousandths: after all residual rounds, a
        /// group whose remaining error norm exceeds
        /// `outlier_keep_milli/1000` of the group's norm keeps its exact
        /// f32 residual (integer milli-units keep `ServeConfig: Eq`).
        outlier_keep_milli: u32,
    },
}

/// Admission and batching limits of a [`Server`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Largest decode batch formed per step (in-flight request slots).
    pub max_batch: usize,
    /// Largest number of requests waiting for a slot; a `submit` beyond
    /// this is rejected with [`LlmError::QueueFull`].
    pub max_queue: usize,
    /// Live-KV storage mode for appended rows (default
    /// [`KvQuantMode::Off`]: teacher-forced decode, no live KV).
    pub kv_quant: KvQuantMode,
    /// Per-request budget on **compressed** live-KV bytes (packed codes +
    /// outliers + f32 tail, K and V). Admission prices a request's final
    /// footprint against it, and growth past it mid-decode is a typed
    /// `KvCapacity` quarantine — capacity denominated in real memory, not
    /// token counts. `None` = unbounded. Ignored when `kv_quant` is
    /// [`KvQuantMode::Off`].
    pub kv_budget_bytes: Option<usize>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_batch: 8,
            max_queue: 64,
            kv_quant: KvQuantMode::Off,
            kv_budget_bytes: None,
        }
    }
}

impl ServeConfig {
    /// Config with explicit limits (live KV off).
    pub fn new(max_batch: usize, max_queue: usize) -> Self {
        ServeConfig {
            max_batch,
            max_queue,
            ..ServeConfig::default()
        }
    }

    /// Sets the live-KV storage mode.
    pub fn with_kv_quant(mut self, mode: KvQuantMode) -> Self {
        self.kv_quant = mode;
        self
    }

    /// Bounds each request's compressed live-KV bytes.
    pub fn with_kv_budget(mut self, bytes: usize) -> Self {
        self.kv_budget_bytes = Some(bytes);
        self
    }

    pub(crate) fn validate(&self) -> Result<()> {
        if self.max_batch == 0 {
            return Err(LlmError::InvalidConfig {
                what: "serve max_batch must be at least 1",
            });
        }
        Ok(())
    }
}

/// The quantized state every request of a [`Server`] decodes against: one
/// K cache, one V cache (`seq × head_dim` each), and one output-projection
/// weight (`head_dim × head_dim`).
///
/// This is the EVA/VecInfer serving scenario: tenants fan out over a
/// shared pre-quantized context (a shared prompt, a system prefix, a
/// beam), each attending its own prefix of it, so one K-decode per step
/// serves the whole batch. Tensors are `Arc`-shared — cloning the context
/// is cheap and servers can hand it to reporting threads.
#[derive(Debug, Clone)]
pub struct SharedContext {
    kq: Arc<QuantizedTensor>,
    vq: Arc<QuantizedTensor>,
    wq: Arc<QuantizedTensor>,
}

impl SharedContext {
    /// Validates and wraps the shared tensors.
    ///
    /// # Errors
    ///
    /// Returns [`LlmError::InvalidConfig`] when K and V disagree in shape
    /// or the projection weight is not `head_dim × head_dim`.
    pub fn new(
        kq: QuantizedTensor,
        vq: QuantizedTensor,
        wq: QuantizedTensor,
    ) -> Result<SharedContext> {
        if kq.shape() != vq.shape() {
            return Err(LlmError::InvalidConfig {
                what: "shared K and V caches must have identical shapes",
            });
        }
        let head_dim = kq.shape().1;
        if wq.shape() != (head_dim, head_dim) {
            return Err(LlmError::InvalidConfig {
                what: "projection weight must be head_dim x head_dim",
            });
        }
        if kq.shape().0 == 0 || head_dim == 0 {
            return Err(LlmError::InvalidConfig {
                what: "shared context must be non-empty",
            });
        }
        Ok(SharedContext {
            kq: Arc::new(kq),
            vq: Arc::new(vq),
            wq: Arc::new(wq),
        })
    }

    /// Cached tokens in the shared context.
    pub fn seq(&self) -> usize {
        self.kq.shape().0
    }

    /// Channels per head.
    pub fn head_dim(&self) -> usize {
        self.kq.shape().1
    }

    /// The quantized K cache.
    pub fn kq(&self) -> &QuantizedTensor {
        &self.kq
    }

    /// The quantized V cache.
    pub fn vq(&self) -> &QuantizedTensor {
        &self.vq
    }

    /// The quantized output-projection weight.
    pub fn wq(&self) -> &QuantizedTensor {
        &self.wq
    }
}
