//! KV-cache bookkeeping with quantization-overhead accounting.
//!
//! The paper (§VII-F) bounds the runtime cost of on-the-fly KV
//! quantization: <1 µs per new token in decode, and <10 % of the linear
//! projections during prefill, hidden behind computation that does not yet
//! need the quantized values. [`KvCache`] tracks cache geometry, byte
//! footprints at each precision, and those overheads.

use crate::model::LlamaConfig;
use serde::Serialize;

/// Storage backing of the KV cache.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum KvStorage {
    /// FP16 (baseline).
    Fp16,
    /// Element-wise 4-bit (QoQ).
    Int4,
    /// Vector-quantized at `bits_per_element` equivalent bits (CQ-4 = 4.0,
    /// CQ-2 = 2.0).
    Vq {
        /// Equivalent bits per element.
        bits_per_element: f64,
    },
}

impl KvStorage {
    /// Equivalent bits per cached element.
    pub fn bits(self) -> f64 {
        match self {
            KvStorage::Fp16 => 16.0,
            KvStorage::Int4 => 4.0 + 0.5, // scales per 64-group
            KvStorage::Vq { bits_per_element } => bits_per_element,
        }
    }
}

/// Decode-phase quantization overhead per new token (paper: "negligible,
/// < 1 µs").
pub const DECODE_QUANT_OVERHEAD_US: f64 = 0.8;

/// Prefill quantization overhead as a fraction of the linear projections
/// (paper: "less than a 10 % overhead compared to linear projections").
pub const PREFILL_QUANT_OVERHEAD_FRAC: f64 = 0.08;

/// Geometry and footprint of a model-wide KV cache.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct KvCache {
    /// Model architecture.
    pub model: LlamaConfig,
    /// Cached tokens per sample.
    pub seq: usize,
    /// Batch size.
    pub batch: usize,
    /// Storage backing.
    pub storage: KvStorage,
}

impl KvCache {
    /// Creates a cache descriptor.
    pub fn new(model: LlamaConfig, seq: usize, batch: usize, storage: KvStorage) -> Self {
        KvCache {
            model,
            seq,
            batch,
            storage,
        }
    }

    /// Total cache bytes at the configured precision (both K and V, all
    /// layers).
    pub fn bytes(&self) -> usize {
        let elems =
            2 * self.batch * self.model.layers * self.model.heads * self.seq * self.model.head_dim;
        (elems as f64 * self.storage.bits() / 8.0).ceil() as usize
    }

    /// Bytes the FP16 baseline would need.
    pub fn fp16_bytes(&self) -> usize {
        self.model.kv_bytes_fp16(self.seq, self.batch)
    }

    /// Compression ratio against FP16.
    pub fn compression(&self) -> f64 {
        self.bytes() as f64 / self.fp16_bytes() as f64
    }

    /// Appends one token per sample, returning the quantization overhead in
    /// microseconds (0 for FP16).
    pub fn append_token(&mut self) -> f64 {
        self.seq += 1;
        match self.storage {
            KvStorage::Fp16 => 0.0,
            _ => DECODE_QUANT_OVERHEAD_US,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cq2_compresses_to_an_eighth() {
        let cache = KvCache::new(
            LlamaConfig::llama_7b(),
            1024,
            1,
            KvStorage::Vq {
                bits_per_element: 2.0,
            },
        );
        assert!((cache.compression() - 0.125).abs() < 1e-9);
    }

    #[test]
    fn append_advances_and_charges_overhead() {
        let mut cache = KvCache::new(
            LlamaConfig::llama_7b(),
            8,
            1,
            KvStorage::Vq {
                bits_per_element: 4.0,
            },
        );
        let us = cache.append_token();
        assert_eq!(cache.seq, 9);
        assert!(us > 0.0 && us < 1.0, "paper: < 1 us");
        let mut fp = KvCache::new(LlamaConfig::llama_7b(), 8, 1, KvStorage::Fp16);
        assert_eq!(fp.append_token(), 0.0);
    }

    #[test]
    fn fp16_batch16_cache_is_gigabytes() {
        let cache = KvCache::new(LlamaConfig::llama_7b(), 1280, 16, KvStorage::Fp16);
        let gb = cache.bytes() as f64 / 1e9;
        assert!(gb > 5.0 && gb < 12.0, "{gb}");
    }
}
