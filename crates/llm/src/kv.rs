//! KV-cache bookkeeping with quantization-overhead accounting.
//!
//! The paper (§VII-F) bounds the runtime cost of on-the-fly KV
//! quantization: <1 µs per new token in decode, and <10 % of the linear
//! projections during prefill, hidden behind computation that does not yet
//! need the quantized values. [`KvCache`] tracks cache geometry, byte
//! footprints at each precision, and those overheads.

use crate::model::LlamaConfig;
use serde::Serialize;

/// Storage backing of the KV cache.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum KvStorage {
    /// FP16 (baseline).
    Fp16,
    /// Element-wise 4-bit (QoQ).
    Int4,
    /// Vector-quantized at `bits_per_element` equivalent bits (CQ-4 = 4.0,
    /// CQ-2 = 2.0).
    Vq {
        /// Equivalent bits per element.
        bits_per_element: f64,
    },
}

impl KvStorage {
    /// Equivalent bits per cached element.
    pub fn bits(self) -> f64 {
        match self {
            KvStorage::Fp16 => 16.0,
            KvStorage::Int4 => 4.0 + 0.5, // scales per 64-group
            KvStorage::Vq { bits_per_element } => bits_per_element,
        }
    }
}

/// Decode-phase quantization overhead per new token (paper: "negligible,
/// < 1 µs").
pub const DECODE_QUANT_OVERHEAD_US: f64 = 0.8;

/// Prefill quantization overhead as a fraction of the linear projections
/// (paper: "less than a 10 % overhead compared to linear projections").
pub const PREFILL_QUANT_OVERHEAD_FRAC: f64 = 0.08;

/// Geometry and footprint of a model-wide KV cache.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct KvCache {
    /// Model architecture.
    pub model: LlamaConfig,
    /// Cached tokens per sample.
    pub seq: usize,
    /// Batch size.
    pub batch: usize,
    /// Storage backing.
    pub storage: KvStorage,
}

impl KvCache {
    /// Creates a cache descriptor.
    ///
    /// Unvalidated (kept for footprint arithmetic on hypothetical
    /// geometries); the serving layer goes through [`KvCache::try_new`] so
    /// that every live cache starts inside the model's context window.
    pub fn new(model: LlamaConfig, seq: usize, batch: usize, storage: KvStorage) -> Self {
        KvCache {
            model,
            seq,
            batch,
            storage,
        }
    }

    /// Creates a cache descriptor, validating the geometry against the
    /// configured model: `seq` must fit the context window and `batch`
    /// must be non-zero.
    ///
    /// # Errors
    ///
    /// Returns [`LlmError::KvCapacity`] when `seq > model.max_seq` or
    /// `batch == 0`.
    pub fn try_new(
        model: LlamaConfig,
        seq: usize,
        batch: usize,
        storage: KvStorage,
    ) -> crate::Result<Self> {
        if seq > model.max_seq {
            return Err(crate::LlmError::KvCapacity {
                what: "seq exceeds the model's context window",
                value: seq,
                limit: model.max_seq,
            });
        }
        if batch == 0 {
            return Err(crate::LlmError::KvCapacity {
                what: "batch must be non-zero",
                value: 0,
                limit: 1,
            });
        }
        Ok(KvCache::new(model, seq, batch, storage))
    }

    /// Total cache bytes at the configured precision (both K and V, all
    /// layers).
    pub fn bytes(&self) -> usize {
        let elems =
            2 * self.batch * self.model.layers * self.model.heads * self.seq * self.model.head_dim;
        (elems as f64 * self.storage.bits() / 8.0).ceil() as usize
    }

    /// Bytes the FP16 baseline would need.
    pub fn fp16_bytes(&self) -> usize {
        self.model.kv_bytes_fp16(self.seq, self.batch)
    }

    /// Bytes one cached token costs per sample at the configured
    /// precision (K and V, all layers) — the unit admission prices when
    /// capacity is denominated in memory instead of token counts.
    pub fn bytes_per_token(&self) -> f64 {
        let elems = 2 * self.model.layers * self.model.heads * self.model.head_dim;
        elems as f64 * self.storage.bits() / 8.0
    }

    /// Compression ratio against FP16.
    pub fn compression(&self) -> f64 {
        self.bytes() as f64 / self.fp16_bytes() as f64
    }

    /// Appends one token per sample, returning the quantization overhead in
    /// microseconds (0 for FP16).
    ///
    /// Growth is validated against the configured model instead of
    /// silently extrapolating: a cache at the context window refuses to
    /// grow, so a decode loop can never walk off the end of the window it
    /// was admitted for.
    ///
    /// # Errors
    ///
    /// Returns [`LlmError::KvCapacity`] when the cache is already at
    /// `model.max_seq`.
    pub fn append_token(&mut self) -> crate::Result<f64> {
        if self.seq >= self.model.max_seq {
            return Err(crate::LlmError::KvCapacity {
                what: "append_token past the model's context window",
                value: self.seq + 1,
                limit: self.model.max_seq,
            });
        }
        self.seq += 1;
        Ok(match self.storage {
            KvStorage::Fp16 => 0.0,
            _ => DECODE_QUANT_OVERHEAD_US,
        })
    }

    /// Resizes the batch dimension (a tenant joining or leaving a shared
    /// model-wide cache), validating the new geometry.
    ///
    /// # Errors
    ///
    /// Returns [`LlmError::KvCapacity`] when `batch == 0`.
    pub fn set_batch(&mut self, batch: usize) -> crate::Result<()> {
        if batch == 0 {
            return Err(crate::LlmError::KvCapacity {
                what: "batch must be non-zero",
                value: 0,
                limit: 1,
            });
        }
        self.batch = batch;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cq2_compresses_to_an_eighth() {
        let cache = KvCache::new(
            LlamaConfig::llama_7b(),
            1024,
            1,
            KvStorage::Vq {
                bits_per_element: 2.0,
            },
        );
        assert!((cache.compression() - 0.125).abs() < 1e-9);
    }

    #[test]
    fn append_advances_and_charges_overhead() {
        let mut cache = KvCache::new(
            LlamaConfig::llama_7b(),
            8,
            1,
            KvStorage::Vq {
                bits_per_element: 4.0,
            },
        );
        let us = cache.append_token().unwrap();
        assert_eq!(cache.seq, 9);
        assert!(us > 0.0 && us < 1.0, "paper: < 1 us");
        let mut fp = KvCache::new(LlamaConfig::llama_7b(), 8, 1, KvStorage::Fp16);
        assert_eq!(fp.append_token().unwrap(), 0.0);
    }

    #[test]
    fn growth_past_the_context_window_is_an_error_not_an_extrapolation() {
        let model = LlamaConfig::llama_7b();
        let mut cache = KvCache::new(
            model,
            model.max_seq - 1,
            1,
            KvStorage::Vq {
                bits_per_element: 4.0,
            },
        );
        // The last in-window append succeeds; the one past it is refused
        // and leaves the geometry untouched.
        assert!(cache.append_token().is_ok());
        assert_eq!(cache.seq, model.max_seq);
        let err = cache.append_token().unwrap_err();
        assert!(
            matches!(err, crate::LlmError::KvCapacity { limit, .. } if limit == model.max_seq),
            "{err}"
        );
        assert_eq!(cache.seq, model.max_seq);
        // Validated construction and batch resizing reject degenerate
        // geometry up front.
        assert!(KvCache::try_new(model, model.max_seq + 1, 1, KvStorage::Fp16).is_err());
        assert!(KvCache::try_new(model, 16, 0, KvStorage::Fp16).is_err());
        let mut ok = KvCache::try_new(model, 16, 2, KvStorage::Fp16).unwrap();
        assert!(ok.set_batch(0).is_err());
        assert_eq!(ok.batch, 2);
        ok.set_batch(5).unwrap();
        assert_eq!(ok.batch, 5);
    }

    #[test]
    fn fp16_batch16_cache_is_gigabytes() {
        let cache = KvCache::new(LlamaConfig::llama_7b(), 1280, 16, KvStorage::Fp16);
        let gb = cache.bytes() as f64 / 1e9;
        assert!(gb > 5.0 && gb < 12.0, "{gb}");
    }
}
