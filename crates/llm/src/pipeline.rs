//! End-to-end latency pipeline (paper Fig. 17).
//!
//! Walks one decode step of a Llama decoder — seven linear layers,
//! attention over the KV cache, and the RMSNorm/SiLU/RoPE element-wise
//! operators — pricing each with the corresponding kernel estimator, then
//! scales to a full generation run (prefill + N decode steps).

use crate::kv::{KvStorage, DECODE_QUANT_OVERHEAD_US, PREFILL_QUANT_OVERHEAD_FRAC};
use crate::model::LlamaConfig;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use vqllm_core::plan_cache::{self, PlanCache, PlanKey, PlanRequest};
use vqllm_core::{ComputeOp, KernelPlan, OptLevel, ProfileSummary};
use vqllm_gpu::GpuSpec;
use vqllm_kernels::backend::{Backend, PerfModelBackend};
use vqllm_kernels::fp16::AttnBaseline;
use vqllm_kernels::{elementwise, fp16, AccessProfile};
use vqllm_vq::VqAlgorithm;

/// Which quantization scheme the pipeline runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QuantScheme {
    /// FP16 weights and KV cache (cutlass + flash kernels).
    Fp16,
    /// qServe: AWQ-4 weights + QoQ-4 KV cache.
    QServe4,
    /// VQ-LLM with a weight algorithm, a KV algorithm, and an optimization
    /// level (O4 = the shipped configuration).
    VqLlm {
        /// Weight quantizer (QuiP#-4, AQLM-3, GPTVQ-2).
        weight: VqAlgorithm,
        /// KV quantizer (CQ-4, CQ-2).
        kv: VqAlgorithm,
        /// Optimization level of the generated kernels.
        opt: OptLevel,
    },
}

impl QuantScheme {
    /// The paper's 4-bit VQ-LLM configuration (QuiP#-4 + CQ-4, fully
    /// optimized).
    pub fn vq_llm_4bit() -> Self {
        QuantScheme::VqLlm {
            weight: VqAlgorithm::QuipSharp4,
            kv: VqAlgorithm::Cq4,
            opt: OptLevel::O4,
        }
    }

    /// The 2-bit configuration (GPTVQ-2 + CQ-2).
    pub fn vq_llm_2bit() -> Self {
        QuantScheme::VqLlm {
            weight: VqAlgorithm::Gptvq2,
            kv: VqAlgorithm::Cq2,
            opt: OptLevel::O4,
        }
    }

    /// Display name.
    pub fn name(&self) -> String {
        match self {
            QuantScheme::Fp16 => "FP16".to_string(),
            QuantScheme::QServe4 => "qServe (4 bit)".to_string(),
            QuantScheme::VqLlm { weight, kv, .. } => {
                format!("VQ-LLM ({} + {})", weight.name(), kv.name())
            }
        }
    }

    /// KV storage backing implied by the scheme.
    pub fn kv_storage(&self) -> KvStorage {
        match self {
            QuantScheme::Fp16 => KvStorage::Fp16,
            QuantScheme::QServe4 => KvStorage::Int4,
            QuantScheme::VqLlm { kv, .. } => KvStorage::Vq {
                bits_per_element: kv.config().equivalent_bits(),
            },
        }
    }

    /// Weight bits per element.
    pub fn weight_bits(&self) -> f64 {
        match self {
            QuantScheme::Fp16 => 16.0,
            QuantScheme::QServe4 => 4.25,
            QuantScheme::VqLlm { weight, .. } => weight.config().equivalent_bits(),
        }
    }
}

/// Latency breakdown of one decode step (microseconds).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct DecodeBreakdown {
    /// All linear layers across all decoder layers.
    pub linear_us: f64,
    /// Attention over the KV cache.
    pub attention_us: f64,
    /// RMSNorm / SiLU / RoPE / residual adds.
    pub elementwise_us: f64,
    /// On-the-fly KV quantization.
    pub kv_quant_us: f64,
}

impl DecodeBreakdown {
    /// Total step latency.
    pub fn total_us(&self) -> f64 {
        self.linear_us + self.attention_us + self.elementwise_us + self.kv_quant_us
    }
}

/// End-to-end generation report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct E2eReport {
    /// Scheme name.
    pub scheme: String,
    /// Prefill latency, milliseconds.
    pub prefill_ms: f64,
    /// Total decode latency, milliseconds.
    pub decode_ms: f64,
    /// Tokens generated.
    pub tokens: usize,
    /// Average decode-step breakdown.
    pub step: DecodeBreakdown,
    /// Weights + KV memory, gigabytes.
    pub memory_gb: f64,
}

impl E2eReport {
    /// Total latency (prefill + decode), milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.prefill_ms + self.decode_ms
    }
}

/// E2E latency pipeline for one (device, model, scheme) triple.
///
/// Kernel plans for the decode-step operators are memoized in a
/// [`PlanCache`]: each unique `(vq algorithm, op)` pair is planned once
/// and every later decode step — and every other pipeline or `Session`
/// sharing the cache — reuses the `Arc`'d plan.
#[derive(Debug, Clone)]
pub struct Pipeline {
    gpu: GpuSpec,
    /// Precomputed full-spec cache identity ([`plan_cache::gpu_identity`])
    /// so per-op cache lookups don't re-render the spec.
    gpu_identity: Arc<str>,
    model: LlamaConfig,
    scheme: QuantScheme,
    cache: Arc<PlanCache>,
    /// Execution backend supplying planning and estimation (the `Session`
    /// facade passes its own, so one workload runs identically on the
    /// performance model or a real substrate).
    backend: Arc<dyn Backend>,
}

impl Pipeline {
    /// Creates a pipeline with a private plan cache.
    pub fn new(gpu: GpuSpec, model: LlamaConfig, scheme: QuantScheme) -> Self {
        Pipeline::with_cache(gpu, model, scheme, Arc::new(PlanCache::new()))
    }

    /// Creates a pipeline sharing an existing plan cache (the `Session`
    /// facade passes its own so all pipelines of a session reuse plans).
    pub fn with_cache(
        gpu: GpuSpec,
        model: LlamaConfig,
        scheme: QuantScheme,
        cache: Arc<PlanCache>,
    ) -> Self {
        Pipeline {
            gpu_identity: plan_cache::gpu_identity(&gpu),
            gpu,
            model,
            scheme,
            cache,
            backend: Arc::new(PerfModelBackend),
        }
    }

    /// Replaces the execution backend (default: [`PerfModelBackend`]).
    pub fn with_backend(mut self, backend: Arc<dyn Backend>) -> Self {
        self.backend = backend;
        self
    }

    /// The configured scheme.
    pub fn scheme(&self) -> &QuantScheme {
        &self.scheme
    }

    /// The configured model shape.
    pub fn model(&self) -> LlamaConfig {
        self.model
    }

    /// The target device (the serving scheduler routes its kernel calls
    /// through the same spec the plans were made for).
    pub(crate) fn gpu(&self) -> &GpuSpec {
        &self.gpu
    }

    /// The execution backend.
    pub fn backend(&self) -> &Arc<dyn Backend> {
        &self.backend
    }

    /// The plan cache memoizing this pipeline's kernel plans.
    pub fn plan_cache(&self) -> &Arc<PlanCache> {
        &self.cache
    }

    /// Latency of one decode step at `seq` cached tokens and `batch`
    /// samples.
    pub fn decode_step(&self, seq: usize, batch: usize) -> DecodeBreakdown {
        let m = &self.model;

        // Linear layers (weights are shared across the batch).
        let mut linear_us = 0.0;
        for (n, k) in m.linear_shapes() {
            linear_us += self.linear_latency_us(n, k, batch);
        }
        linear_us *= m.layers as f64;

        // Attention over the whole model.
        let attention_us = self.attention_latency_us(seq, batch) * m.layers as f64;

        // Element-wise operators: 2×RMSNorm, SiLU, RoPE, 2×residual per
        // layer — tiny traffic, launch-overhead bound at decode batch
        // sizes (the paper's ~10-20 % tail).
        let elem_bytes = (batch * m.hidden * 2 * 3) as f64;
        let per_op = (elem_bytes / self.gpu.peak_bw_bytes() * 1e6).max(2.0);
        let elementwise_us = per_op * 6.0 * m.layers as f64;

        let kv_quant_us = match self.scheme.kv_storage() {
            KvStorage::Fp16 => 0.0,
            _ => DECODE_QUANT_OVERHEAD_US,
        };

        DecodeBreakdown {
            linear_us,
            attention_us,
            elementwise_us,
            kv_quant_us,
        }
    }

    /// Prefill latency for `prompt` tokens at `batch`, in milliseconds.
    pub fn prefill_ms(&self, prompt: usize, batch: usize) -> f64 {
        let m = &self.model;
        let rows = prompt * batch;
        let mut us = 0.0;
        for (n, k) in m.linear_shapes() {
            us += self.gemm_latency_us(rows, n, k);
        }
        // Prefill attention: causal QK^T + PV at FP16 on tensor cores.
        let attn_flops =
            (batch * m.heads) as f64 * 2.0 * (prompt as f64 * prompt as f64 * m.head_dim as f64);
        let attn_us = attn_flops / (self.gpu.peak_flops() * self.gpu.mma_multiplier) * 1e6;
        us += attn_us;
        us *= m.layers as f64;
        // On-the-fly quantization of the prompt's KV: < 10 % of the linear
        // projections (paper §VII-F).
        if !matches!(self.scheme.kv_storage(), KvStorage::Fp16) {
            us *= 1.0 + PREFILL_QUANT_OVERHEAD_FRAC;
        }
        us / 1000.0
    }

    /// Full generation run: prefill then `gen_tokens` decode steps.
    pub fn generate(&self, prompt: usize, gen_tokens: usize, batch: usize) -> E2eReport {
        let prefill_ms = self.prefill_ms(prompt, batch);
        // Decode cost grows with the cache; sample at the midpoint
        // sequence length (latency is affine in seq, so this is exact for
        // the sum).
        let mid = prompt + gen_tokens / 2;
        let step = self.decode_step(mid, batch);
        let decode_ms = step.total_us() * gen_tokens as f64 / 1000.0;

        let weight_gb = self.model.decoder_params() as f64 * self.scheme.weight_bits() / 8.0 / 1e9;
        let kv_gb = self.model.kv_bytes_fp16(prompt + gen_tokens, batch) as f64
            * (self.scheme.kv_storage().bits() / 16.0)
            / 1e9;

        E2eReport {
            scheme: self.scheme.name(),
            prefill_ms,
            decode_ms,
            tokens: gen_tokens,
            step,
            memory_gb: weight_gb + kv_gb,
        }
    }

    /// Executes one decode linear layer for real: activations `x`
    /// (`batch × k`, one row per in-flight sequence) against the quantized
    /// weight `wq` (`k × n`), through the pipeline's backend and plan
    /// cache.
    ///
    /// This is the serving-layer execution hook: a single-token batch is
    /// planned and run as a GeMV, while a multi-token batch is planned as
    /// the **GeMM-shaped decode op** (`m = batch`) and routed through
    /// [`Backend::run_gemm`] — on a `CpuBackend` that is the panel-blocked
    /// batched path, which decodes each weight panel once for the whole
    /// batch instead of once per sequence.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::InvalidInput`] when no launchable plan
    /// exists for the decode shape, or a shape error from the backend.
    ///
    /// [`KernelError::InvalidInput`]: vqllm_kernels::KernelError::InvalidInput
    pub fn run_linear(
        &self,
        x: &vqllm_tensor::Tensor2D,
        wq: &vqllm_vq::QuantizedTensor,
    ) -> vqllm_kernels::Result<(vqllm_tensor::Tensor2D, vqllm_kernels::KernelOutput)> {
        let vq = *wq.config();
        let (k, n) = wq.shape();
        let opt = match self.scheme {
            QuantScheme::VqLlm { opt, .. } => opt,
            _ => OptLevel::O4,
        };
        let profile = AccessProfile::default_for(&vq);
        let op = if x.rows() == 1 {
            ComputeOp::Gemv { n, k, batch: 1 }
        } else {
            ComputeOp::Gemm { m: x.rows(), n, k }
        };
        let plan = self.vq_plan(&vq, &op, opt, &profile).ok_or(
            vqllm_kernels::KernelError::InvalidInput {
                what: "no launchable plan for decode linear",
            },
        )?;
        if x.rows() == 1 {
            let (y, out) = self.backend.run_gemv(&self.gpu, &plan, x.row(0), wq)?;
            let y =
                vqllm_tensor::Tensor2D::from_vec(1, y.len(), y).expect("gemv output is one row");
            Ok((y, out))
        } else {
            self.backend.run_gemm(&self.gpu, &plan, x, wq)
        }
    }

    /// Executes one attention head for a batch of decode queries (`qs` is
    /// `batch × head_dim`) over shared quantized K/V caches, planned
    /// through the cache and routed to [`Backend::run_attention_batch`]
    /// (the fused batched kernel on a `CpuBackend`).
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::InvalidInput`] when no launchable plan
    /// exists for the attention shape, or a shape error from the backend.
    ///
    /// [`KernelError::InvalidInput`]: vqllm_kernels::KernelError::InvalidInput
    pub fn run_attention_heads(
        &self,
        qs: &vqllm_tensor::Tensor2D,
        kq: &vqllm_vq::QuantizedTensor,
        vq_cache: &vqllm_vq::QuantizedTensor,
    ) -> vqllm_kernels::Result<(vqllm_tensor::Tensor2D, vqllm_kernels::KernelOutput)> {
        let vq = *kq.config();
        let opt = match self.scheme {
            QuantScheme::VqLlm { opt, .. } => opt,
            _ => OptLevel::O4,
        };
        let profile = AccessProfile::default_for(&vq);
        let (seq, head_dim) = kq.shape();
        let op = ComputeOp::attention_decode(1, head_dim, seq, qs.rows().max(1));
        let plan = self.vq_plan(&vq, &op, opt, &profile).ok_or(
            vqllm_kernels::KernelError::InvalidInput {
                what: "no launchable plan for decode attention",
            },
        )?;
        self.backend
            .run_attention_batch(&self.gpu, &plan, qs, kq, vq_cache)
    }

    fn linear_latency_us(&self, n: usize, k: usize, batch: usize) -> f64 {
        match self.scheme {
            QuantScheme::Fp16 => fp16::gemv(&self.gpu, n, k, batch).us(),
            QuantScheme::QServe4 => elementwise::awq_gemv(&self.gpu, n, k, batch).us(),
            QuantScheme::VqLlm { weight, opt, .. } => {
                let vq = weight.config();
                let op = ComputeOp::Gemv { n, k, batch };
                self.vq_latency_us(&vq, &op, opt)
                    .unwrap_or_else(|| fp16::gemv(&self.gpu, n, k, batch).us())
            }
        }
    }

    fn attention_latency_us(&self, seq: usize, batch: usize) -> f64 {
        let m = &self.model;
        match self.scheme {
            QuantScheme::Fp16 => fp16::attention(
                &self.gpu,
                AttnBaseline::FlashDecoding,
                batch,
                m.heads,
                m.head_dim,
                seq,
            )
            .us(),
            QuantScheme::QServe4 => {
                elementwise::qoq_attention(&self.gpu, batch, m.heads, m.head_dim, seq).us()
            }
            QuantScheme::VqLlm { kv, opt, .. } => {
                let vq = kv.config();
                let op = ComputeOp::attention_decode(m.heads, m.head_dim, seq, batch);
                self.vq_latency_us(&vq, &op, opt).unwrap_or_else(|| {
                    fp16::attention(
                        &self.gpu,
                        AttnBaseline::FlashDecoding,
                        batch,
                        m.heads,
                        m.head_dim,
                        seq,
                    )
                    .us()
                })
            }
        }
    }

    fn gemm_latency_us(&self, m_rows: usize, n: usize, k: usize) -> f64 {
        match self.scheme {
            QuantScheme::Fp16 => fp16::gemm(&self.gpu, m_rows, n, k).us(),
            QuantScheme::QServe4 => elementwise::awq_gemm(&self.gpu, m_rows, n, k).us(),
            QuantScheme::VqLlm { weight, opt, .. } => {
                let vq = weight.config();
                let op = ComputeOp::Gemm { m: m_rows, n, k };
                self.vq_latency_us(&vq, &op, opt)
                    .unwrap_or_else(|| fp16::gemm(&self.gpu, m_rows, n, k).us())
            }
        }
    }

    /// VQ kernel latency at the requested level; `O4` means the fully
    /// adaptive framework (fastest rung per the planner's heuristics, the
    /// paper's "best perform version"). Plans are memoized in the
    /// pipeline's [`PlanCache`], so only the first request per
    /// `(vq, op, opt)` key runs the planner.
    fn vq_latency_us(&self, vq: &vqllm_vq::VqConfig, op: &ComputeOp, opt: OptLevel) -> Option<f64> {
        let profile = AccessProfile::default_for(vq);
        let plan = self.vq_plan(vq, op, opt, &profile)?;
        Some(self.backend.estimate(&self.gpu, &plan, &profile).us())
    }

    /// Memoized plan lookup: `O4` resolves to the adaptive best plan
    /// under `profile` (fingerprinted into the key via the canonical
    /// [`PlanKey::best`] recipe, so `Session` shares the entry), lower
    /// levels to a fixed-rung plan. `pub(crate)` so the serving scheduler
    /// plans its canonical decode shapes through the same cache.
    pub(crate) fn vq_plan(
        &self,
        vq: &vqllm_vq::VqConfig,
        op: &ComputeOp,
        opt: OptLevel,
        profile: &AccessProfile,
    ) -> Option<Arc<KernelPlan>> {
        self.vq_plan_profiled(vq, op, opt, profile, &ProfileSummary::default_for(vq))
            .map(|(_, plan)| plan)
    }

    /// [`Pipeline::vq_plan`] with an explicit **measured** profile summary
    /// (the profile-feedback seam): the key carries the measured hot-entry
    /// count and the estimation profile's fingerprint via the canonical
    /// [`PlanKey::best_profiled`] recipe, so two engines measuring the
    /// same tensors share one cache entry while a shifted distribution
    /// never aliases a stale decision. Returns the key alongside the plan
    /// so the caller can later invalidate exactly this entry.
    pub(crate) fn vq_plan_profiled(
        &self,
        vq: &vqllm_vq::VqConfig,
        op: &ComputeOp,
        opt: OptLevel,
        profile: &AccessProfile,
        summary: &ProfileSummary,
    ) -> Option<(PlanKey, Arc<KernelPlan>)> {
        let (key, request) = if opt == OptLevel::O4 {
            (
                PlanKey::best_profiled(
                    Arc::clone(&self.gpu_identity),
                    vq,
                    op,
                    summary,
                    profile.fingerprint(),
                ),
                PlanRequest::Best,
            )
        } else {
            (
                PlanKey::with_identity(
                    Arc::clone(&self.gpu_identity),
                    vq,
                    op,
                    PlanRequest::At(opt),
                    summary,
                ),
                PlanRequest::At(opt),
            )
        };
        let plan = self
            .cache
            .get_or_try_insert_with(key.clone(), || -> Result<KernelPlan, ()> {
                self.backend
                    .plan_request(&self.gpu, vq, op, request, profile, summary)
                    .map_err(|_| ())
            })
            .ok()?;
        Some((key, plan))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(scheme: QuantScheme) -> E2eReport {
        Pipeline::new(GpuSpec::rtx4090(), LlamaConfig::llama_7b(), scheme).generate(1024, 256, 16)
    }

    #[test]
    fn vq_llm_4bit_speedup_is_paperlike() {
        // Paper Fig. 17: both qServe-4 and VQ-LLM-4 land around 2.2× over
        // FP16 at batch 16.
        let fp16 = report(QuantScheme::Fp16);
        let vq = report(QuantScheme::vq_llm_4bit());
        let speedup = fp16.total_ms() / vq.total_ms();
        assert!(
            speedup > 1.6 && speedup < 3.5,
            "speedup {speedup} (fp16 {} ms, vq {} ms)",
            fp16.total_ms(),
            vq.total_ms()
        );
    }

    #[test]
    fn two_bit_beats_four_bit() {
        // Paper: "a greater speedup with a 2-bit compression ratio".
        let v4 = report(QuantScheme::vq_llm_4bit());
        let v2 = report(QuantScheme::vq_llm_2bit());
        assert!(
            v2.total_ms() < v4.total_ms(),
            "2-bit {} !< 4-bit {}",
            v2.total_ms(),
            v4.total_ms()
        );
    }

    #[test]
    fn vq_llm_is_comparable_to_qserve() {
        let qserve = report(QuantScheme::QServe4);
        let vq = report(QuantScheme::vq_llm_4bit());
        let ratio = vq.total_ms() / qserve.total_ms();
        assert!(ratio > 0.6 && ratio < 1.5, "ratio {ratio}");
    }

    #[test]
    fn a40_speedup_is_comparable() {
        // Paper §VII-E reports a *greater* E2E speedup on the
        // bandwidth-constrained A40. Our model lands slightly below the
        // 4090 instead, because the dequantization's SM-cycle costs scale
        // with the A40's weaker compute while the FP16 baseline's
        // bottleneck scales with bandwidth — a documented deviation
        // (EXPERIMENTS.md, Fig. 17). We assert the speedups stay within
        // 20 % of each other and both remain ≫ 1.
        let speedup = |gpu: GpuSpec| {
            let fp = Pipeline::new(gpu.clone(), LlamaConfig::llama_7b(), QuantScheme::Fp16)
                .generate(1024, 256, 16);
            let vq = Pipeline::new(gpu, LlamaConfig::llama_7b(), QuantScheme::vq_llm_4bit())
                .generate(1024, 256, 16);
            fp.total_ms() / vq.total_ms()
        };
        let s4090 = speedup(GpuSpec::rtx4090());
        let sa40 = speedup(GpuSpec::a40());
        assert!(sa40 > 1.7, "A40 speedup {sa40}");
        assert!(sa40 > s4090 * 0.8, "A40 {sa40} vs 4090 {s4090}");
    }

    #[test]
    fn memory_matches_paper_footprints() {
        // Paper §VII-E: FP16 > 22 GB (with activations); qServe-4 and
        // VQ-LLM-4 < 6 GB for weights+KV.
        let fp16 = report(QuantScheme::Fp16);
        let vq = report(QuantScheme::vq_llm_4bit());
        assert!(fp16.memory_gb > 20.0, "{}", fp16.memory_gb);
        assert!(vq.memory_gb < 6.5, "{}", vq.memory_gb);
    }

    #[test]
    fn elementwise_share_is_the_paper_tail() {
        // ~10 % at FP16, roughly doubling in share once the rest shrinks.
        let fp16 = report(QuantScheme::Fp16);
        let share_fp16 = fp16.step.elementwise_us / fp16.step.total_us();
        let vq = report(QuantScheme::vq_llm_4bit());
        let share_vq = vq.step.elementwise_us / vq.step.total_us();
        assert!(share_fp16 < 0.2, "{share_fp16}");
        assert!(share_vq > share_fp16, "{share_vq} !> {share_fp16}");
    }

    #[test]
    fn run_linear_routes_batch_through_gemm_path() {
        use vqllm_kernels::backend::CpuBackend;
        use vqllm_tensor::{linalg, metrics, synth, Tensor2D};
        use vqllm_vq::{VqAlgorithm, VqQuantizer};

        let pipeline = Pipeline::new(
            GpuSpec::rtx4090(),
            LlamaConfig::llama_7b(),
            QuantScheme::vq_llm_2bit(),
        )
        .with_backend(Arc::new(CpuBackend::with_threads(2)));
        let w = synth::correlated_channels(256, 64, 4, 0.9, 3);
        let wq = VqQuantizer::new(VqAlgorithm::Gptvq2.config())
            .quantize(&w, 1)
            .unwrap();
        let w_ref = wq.dequantize().unwrap();

        // Single-token decode plans a GeMV; the batch plans a GeMM.
        for batch in [1usize, 4] {
            let x = Tensor2D::from_fn(batch, 256, |b, i| ((b * 7 + i) as f32 * 0.13).sin());
            let (y, out) = pipeline.run_linear(&x, &wq).expect("run_linear");
            assert_eq!(y.shape(), (batch, 64));
            assert!(out.us() > 0.0);
            let oracle = linalg::matmul(&x, &w_ref).unwrap();
            assert!(
                metrics::allclose(y.as_slice(), oracle.as_slice(), 1e-4, 1e-4),
                "batch {batch}"
            );
        }
        // Both plans are memoized: a second batch run must hit the cache.
        let before = pipeline.plan_cache().stats().hits;
        let x = Tensor2D::from_fn(4, 256, |b, i| ((b + i) as f32 * 0.29).cos());
        pipeline.run_linear(&x, &wq).expect("cached run");
        assert!(pipeline.plan_cache().stats().hits > before);
    }

    #[test]
    fn run_attention_heads_matches_reference() {
        use vqllm_kernels::backend::CpuBackend;
        use vqllm_tensor::{linalg, metrics, synth, Tensor2D};
        use vqllm_vq::{VqAlgorithm, VqQuantizer};

        let pipeline = Pipeline::new(
            GpuSpec::rtx4090(),
            LlamaConfig::llama_7b(),
            QuantScheme::vq_llm_4bit(),
        )
        .with_backend(Arc::new(CpuBackend::new()));
        let cfg = VqAlgorithm::Cq4.config();
        let k = synth::kv_stream(320, 32, 0.8, 4);
        let v = synth::kv_stream(320, 32, 0.8, 5);
        let kq = VqQuantizer::new(cfg).quantize(&k, 1).unwrap();
        let vq = VqQuantizer::new(cfg).quantize(&v, 2).unwrap();
        let qs = Tensor2D::from_fn(3, 32, |b, d| ((b * 11 + d) as f32 * 0.31).sin());
        let (out, _) = pipeline
            .run_attention_heads(&qs, &kq, &vq)
            .expect("attention");
        assert_eq!(out.shape(), (3, 32));
        let scale = 1.0 / (32.0f32).sqrt();
        for b in 0..3 {
            let oracle = linalg::attention_decode_ref(
                qs.row(b),
                &kq.dequantize().unwrap(),
                &vq.dequantize().unwrap(),
                scale,
            )
            .unwrap();
            assert!(
                metrics::allclose(out.row(b), &oracle, 1e-4, 1e-4),
                "query {b}"
            );
        }
    }

    #[test]
    fn kv_quant_overhead_is_negligible() {
        let vq = report(QuantScheme::vq_llm_4bit());
        assert!(vq.step.kv_quant_us < 1.0);
        assert!(vq.step.kv_quant_us / vq.step.total_us() < 0.01);
    }
}
