//! Llama model configurations.

use serde::Serialize;

/// Architecture of a Llama-family model (the paper evaluates 7B and 65B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub struct LlamaConfig {
    /// Model name for reports.
    pub name: &'static str,
    /// Hidden dimension.
    pub hidden: usize,
    /// Attention heads.
    pub heads: usize,
    /// Channels per head (`hidden / heads`).
    pub head_dim: usize,
    /// Decoder layers.
    pub layers: usize,
    /// MLP intermediate dimension.
    pub intermediate: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// Context window: the largest sequence the KV cache may grow to.
    /// Growth past this is a configuration error, not an extrapolation
    /// ([`KvCache::append_token`](crate::KvCache::append_token)).
    pub max_seq: usize,
}

impl LlamaConfig {
    /// Llama-7B: 32 heads × 128, hidden 4096, 32 layers, intermediate
    /// 11008.
    pub fn llama_7b() -> Self {
        LlamaConfig {
            name: "Llama-7B",
            hidden: 4096,
            heads: 32,
            head_dim: 128,
            layers: 32,
            intermediate: 11008,
            vocab: 32000,
            max_seq: 2048,
        }
    }

    /// Llama-65B: 64 heads × 128, hidden 8192, 80 layers, intermediate
    /// 22016.
    pub fn llama_65b() -> Self {
        LlamaConfig {
            name: "Llama-65B",
            hidden: 8192,
            heads: 64,
            head_dim: 128,
            layers: 80,
            intermediate: 22016,
            vocab: 32000,
            max_seq: 2048,
        }
    }

    /// Weight parameter count of one decoder layer (attention + MLP).
    pub fn params_per_layer(&self) -> usize {
        // Q, K, V, O projections + gate/up/down MLP weights.
        4 * self.hidden * self.hidden + 3 * self.hidden * self.intermediate
    }

    /// Total decoder parameters (excluding embeddings).
    pub fn decoder_params(&self) -> usize {
        self.params_per_layer() * self.layers
    }

    /// FP16 bytes of all decoder weights.
    pub fn weight_bytes_fp16(&self) -> usize {
        self.decoder_params() * 2
    }

    /// FP16 bytes of the KV cache at `seq` tokens and `batch` samples.
    pub fn kv_bytes_fp16(&self, seq: usize, batch: usize) -> usize {
        2 * batch * self.layers * self.heads * seq * self.head_dim * 2
    }

    /// The linear-layer shapes of one decoder layer as (n, k) pairs for
    /// decode-phase GeMV.
    pub fn linear_shapes(&self) -> [(usize, usize); 7] {
        [
            (self.hidden, self.hidden),       // Q
            (self.hidden, self.hidden),       // K
            (self.hidden, self.hidden),       // V
            (self.hidden, self.hidden),       // O
            (self.intermediate, self.hidden), // gate
            (self.intermediate, self.hidden), // up
            (self.hidden, self.intermediate), // down
        ]
    }
}

impl std::fmt::Display for LlamaConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn llama7b_is_about_7b_params() {
        let cfg = LlamaConfig::llama_7b();
        let total = cfg.decoder_params() + 2 * cfg.vocab * cfg.hidden;
        assert!((6.4e9..7.2e9).contains(&(total as f64)), "params {total}");
        assert_eq!(cfg.heads * cfg.head_dim, cfg.hidden);
    }

    #[test]
    fn llama65b_is_about_65b_params() {
        let cfg = LlamaConfig::llama_65b();
        let total = cfg.decoder_params() + 2 * cfg.vocab * cfg.hidden;
        assert!((6.2e10..6.8e10).contains(&(total as f64)), "params {total}");
    }

    #[test]
    fn fp16_weights_exceed_22_gb_is_false_for_7b() {
        // Paper §VII-E: "the FP16 baseline consumes over 22 GB" — that is
        // weights (13.5 GB) + KV cache at batch 16 (8.6 GB) + activations.
        let cfg = LlamaConfig::llama_7b();
        let weights = cfg.weight_bytes_fp16() as f64 / 1e9;
        let kv = cfg.kv_bytes_fp16(1024 + 256, 16) as f64 / 1e9;
        assert!(weights > 12.0 && weights < 14.0, "{weights}");
        assert!(weights + kv > 20.0, "total {}", weights + kv);
    }

    #[test]
    fn linear_shapes_cover_all_params() {
        let cfg = LlamaConfig::llama_7b();
        let sum: usize = cfg.linear_shapes().iter().map(|(n, k)| n * k).sum();
        assert_eq!(sum, cfg.params_per_layer());
    }
}
