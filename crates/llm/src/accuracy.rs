//! Accuracy proxy (documented substitution, DESIGN.md §5).
//!
//! We cannot run arc-challenge through a real 7B checkpoint on this
//! substrate, but the paper's accuracy claim — VQ at a given bit-width
//! reconstructs better than element-wise quantization, so task accuracy
//! follows — reduces to reconstruction quality, which we *can* measure
//! exactly. The proxy quantizes synthetic correlated weight and KV tensors
//! under each scheme, computes normalized MSE, and maps it through a
//! monotone accuracy model calibrated to the paper's Fig. 17 (right):
//! FP16 ≈ 45.4 %, VQ-LLM-4 slightly above, qServe-4 ≈ 2.5 % (relative)
//! below.

use crate::pipeline::QuantScheme;
use serde::{Deserialize, Serialize};
use vqllm_tensor::{metrics, synth, Tensor2D};
use vqllm_vq::scalar::{self, ScalarQuantConfig};
use vqllm_vq::{VqAlgorithm, VqQuantizer};

/// arc-challenge accuracy of the FP16 baseline (paper Fig. 17 right).
pub const FP16_ACCURACY: f64 = 0.454;

/// Sensitivity of task accuracy to weight reconstruction error
/// (calibrated so qServe-4's measured nMSE lands ≈ 1.1 points below FP16).
const WEIGHT_SENSITIVITY: f64 = 0.55;

/// Sensitivity to KV reconstruction error (attention is more tolerant).
const KV_SENSITIVITY: f64 = 0.25;

/// Projects task accuracy from a **live-KV** reconstruction error alone
/// (weights and the shared context taken as exact): the serving layer's
/// online KV quantization measures its fold-time nMSE and threads it
/// through the same calibrated sensitivity the offline proxy uses, so
/// online and offline numbers sit on one scale.
pub fn project_kv_accuracy(kv_nmse: f64) -> f64 {
    FP16_ACCURACY * (1.0 - KV_SENSITIVITY * kv_nmse.max(0.0))
}

/// Measured reconstruction errors and the projected accuracy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccuracyResult {
    /// Normalized weight-reconstruction MSE (MSE / data variance).
    pub weight_nmse: f64,
    /// Normalized KV-reconstruction MSE.
    pub kv_nmse: f64,
    /// Projected arc-challenge accuracy.
    pub accuracy: f64,
}

/// The accuracy-proxy evaluator.
#[derive(Debug, Clone, Copy)]
pub struct AccuracyProxy {
    seed: u64,
}

impl AccuracyProxy {
    /// Creates a proxy with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        AccuracyProxy { seed }
    }

    /// Evaluates a scheme: quantizes synthetic correlated weight and KV
    /// tensors, measures nMSE, projects accuracy.
    pub fn evaluate(&self, scheme: &QuantScheme) -> AccuracyResult {
        let weights = synth::correlated_channels(192, 256, 8, 0.85, self.seed);
        let kv = synth::kv_stream(512, 128, 0.85, self.seed ^ 0xabcd);

        let (weight_nmse, kv_nmse) = match scheme {
            QuantScheme::Fp16 => (0.0, 0.0),
            QuantScheme::QServe4 => (
                scalar_nmse(&weights, ScalarQuantConfig::awq4()),
                scalar_nmse(&kv, ScalarQuantConfig::qoq_kv4()),
            ),
            QuantScheme::VqLlm {
                weight,
                kv: kv_algo,
                ..
            } => (
                vq_nmse(&weights, *weight, self.seed),
                vq_nmse(&kv, *kv_algo, self.seed ^ 1),
            ),
        };

        let accuracy =
            FP16_ACCURACY * (1.0 - WEIGHT_SENSITIVITY * weight_nmse - KV_SENSITIVITY * kv_nmse);
        AccuracyResult {
            weight_nmse,
            kv_nmse,
            accuracy,
        }
    }
}

impl Default for AccuracyProxy {
    fn default() -> Self {
        AccuracyProxy::new(2024)
    }
}

fn variance(t: &Tensor2D) -> f64 {
    let n = t.len() as f64;
    let mean = t.as_slice().iter().map(|&v| f64::from(v)).sum::<f64>() / n;
    t.as_slice()
        .iter()
        .map(|&v| (f64::from(v) - mean).powi(2))
        .sum::<f64>()
        / n
}

fn scalar_nmse(t: &Tensor2D, cfg: ScalarQuantConfig) -> f64 {
    let q = scalar::quantize(t, cfg).expect("valid scalar config");
    metrics::mse_tensor(t, &q.dequantize()) / variance(t).max(1e-12)
}

fn vq_nmse(t: &Tensor2D, algo: VqAlgorithm, seed: u64) -> f64 {
    let q = VqQuantizer::new(algo.config())
        .quantize(t, seed)
        .expect("synthetic tensor shapes fit all presets");
    metrics::mse_tensor(t, &q.dequantize().expect("dequantize")) / variance(t).max(1e-12)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fp16_is_lossless() {
        let r = AccuracyProxy::default().evaluate(&QuantScheme::Fp16);
        assert_eq!(r.weight_nmse, 0.0);
        assert!((r.accuracy - FP16_ACCURACY).abs() < 1e-12);
    }

    #[test]
    fn four_bit_vq_beats_qserve_on_reconstruction() {
        // The paper's central accuracy claim at matched bit-width.
        let proxy = AccuracyProxy::default();
        let vq = proxy.evaluate(&QuantScheme::vq_llm_4bit());
        let qserve = proxy.evaluate(&QuantScheme::QServe4);
        assert!(
            vq.accuracy > qserve.accuracy,
            "VQ {} !> qServe {}",
            vq.accuracy,
            qserve.accuracy
        );
    }

    #[test]
    fn accuracies_are_plausible_fractions() {
        let proxy = AccuracyProxy::default();
        for scheme in [
            QuantScheme::Fp16,
            QuantScheme::QServe4,
            QuantScheme::vq_llm_4bit(),
            QuantScheme::vq_llm_2bit(),
        ] {
            let r = proxy.evaluate(&scheme);
            assert!(
                (0.30..=0.46).contains(&r.accuracy),
                "{:?} → {}",
                scheme,
                r.accuracy
            );
        }
    }

    #[test]
    fn two_bit_costs_accuracy() {
        let proxy = AccuracyProxy::default();
        let v4 = proxy.evaluate(&QuantScheme::vq_llm_4bit());
        let v2 = proxy.evaluate(&QuantScheme::vq_llm_2bit());
        assert!(v2.accuracy < v4.accuracy);
    }
}
