//! Benchmark harness: shared plumbing for the figure/table regeneration
//! binaries (`src/bin/fig*.rs`, `src/bin/tbl*.rs`) and the Criterion
//! benches (`benches/`).
//!
//! Every binary regenerates one table or figure from the paper's
//! evaluation; `cargo run -p vqllm-bench --bin figures --release` runs all
//! of them and tees the output to `results/`.

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

/// A figure/table report: builds the text, prints it, and tees it into
/// `results/<id>.txt` at the workspace root.
#[derive(Debug)]
pub struct Report {
    id: String,
    body: String,
}

impl Report {
    /// Starts a report for experiment `id` (e.g. `"fig13"`).
    pub fn new(id: &str, title: &str) -> Self {
        let mut body = String::new();
        let _ = writeln!(
            body,
            "================================================================"
        );
        let _ = writeln!(body, "{id}: {title}");
        let _ = writeln!(
            body,
            "================================================================"
        );
        Report {
            id: id.to_string(),
            body,
        }
    }

    /// Appends a line.
    pub fn line(&mut self, s: impl AsRef<str>) {
        let _ = writeln!(self.body, "{}", s.as_ref());
    }

    /// Appends a blank line.
    pub fn blank(&mut self) {
        let _ = writeln!(self.body);
    }

    /// Appends a section header.
    pub fn section(&mut self, s: &str) {
        let _ = writeln!(self.body, "\n--- {s} ---");
    }

    /// Prints to stdout and writes `results/<id>.txt`.
    pub fn finish(self) {
        println!("{}", self.body);
        let dir = results_dir();
        let _ = fs::create_dir_all(&dir);
        let _ = fs::write(dir.join(format!("{}.txt", self.id)), &self.body);
    }
}

/// `results/` directory at the workspace root (falls back to CWD).
pub fn results_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench → workspace root is two up.
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p.push("results");
    p
}

/// Formats a latency with a sensible unit.
pub fn fmt_us(us: f64) -> String {
    if us >= 10_000.0 {
        format!("{:8.2} ms", us / 1000.0)
    } else {
        format!("{us:8.1} us")
    }
}

/// Formats a byte count.
pub fn fmt_bytes(b: f64) -> String {
    if b >= 1e9 {
        format!("{:7.2} GB", b / 1e9)
    } else if b >= 1e6 {
        format!("{:7.2} MB", b / 1e6)
    } else if b >= 1e3 {
        format!("{:7.2} KB", b / 1e3)
    } else {
        format!("{b:7.0} B ")
    }
}

/// Simple fixed-width ASCII bar for histogram-style figures.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    let n = if max > 0.0 {
        ((value / max) * width as f64).round() as usize
    } else {
        0
    };
    "#".repeat(n.min(width))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_scales_and_clamps() {
        assert_eq!(bar(5.0, 10.0, 10), "#####");
        assert_eq!(bar(20.0, 10.0, 10), "##########");
        assert_eq!(bar(0.0, 10.0, 10), "");
        assert_eq!(bar(1.0, 0.0, 10), "");
    }

    #[test]
    fn fmt_helpers_pick_units() {
        assert!(fmt_us(500.0).contains("us"));
        assert!(fmt_us(50_000.0).contains("ms"));
        assert!(fmt_bytes(2.5e6).contains("MB"));
        assert!(fmt_bytes(100.0).contains("B"));
    }
}
