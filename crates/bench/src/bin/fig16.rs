//! Figure 16: latency against element-wise quantization works and FP16.
//!
//! GeMM (2048×4096×4096), GeMV BS16, attention BS1 seq 1k on the RTX
//! 4090. The "open-source implementation" rows are the naive GC kernels
//! (the paper measured 2.83×-114× against the official QuiP#/AQLM
//! repositories, which ship exactly this kind of unfused global-codebook
//! kernel).

use vq_llm::{ComputeOp, GpuSpec, OptLevel, Session, VqAlgorithm};
use vqllm_bench::{fmt_us, Report};
use vqllm_kernels::{elementwise, fp16};

fn vq_best(s: &Session, algo: VqAlgorithm, op: ComputeOp) -> f64 {
    s.best_plan(&algo.config(), &op).expect("best plan").1.us()
}

fn vq_gc(s: &Session, algo: VqAlgorithm, op: ComputeOp) -> f64 {
    let plan = s
        .plan_at(&algo.config(), &op, OptLevel::Gc)
        .expect("GC plan");
    s.estimate(&plan).us()
}

fn main() {
    let mut r = Report::new(
        "fig16",
        "Comparison with element-wise quantization (paper Fig. 16)",
    );
    let session = Session::builder()
        .gpu(GpuSpec::rtx4090())
        .build()
        .expect("valid session");
    let gpu = session.gpu().clone();

    r.section("GeMM 2048x11008x4096 (relative to AWQ-4)");
    let gemm = ComputeOp::Gemm {
        m: 2048,
        n: 11008,
        k: 4096,
    };
    let awq = elementwise::awq_gemm(&gpu, 2048, 11008, 4096).us();
    let cutlass = fp16::gemm(&gpu, 2048, 11008, 4096).us();
    let quip = vq_best(&session, VqAlgorithm::QuipSharp4, gemm);
    let gptvq = vq_best(&session, VqAlgorithm::Gptvq2, gemm);
    let quip_open = vq_gc(&session, VqAlgorithm::QuipSharp4, gemm);
    for (name, us) in [
        ("AWQ-4bit (qServe)", awq),
        ("cutlass-16", cutlass),
        ("QuiP#-4 (VQ-LLM)", quip),
        ("GPTVQ-2 (VQ-LLM)", gptvq),
        ("QuiP#-4 (open-source style GC)", quip_open),
    ] {
        r.line(format!("{name:32} {} ({:5.2}x AWQ)", fmt_us(us), us / awq));
    }

    r.section("GeMV 11008x4096 BS16 (relative to AWQ-4)");
    let gemv = ComputeOp::Gemv {
        n: 11008,
        k: 4096,
        batch: 16,
    };
    let awq_v = elementwise::awq_gemv(&gpu, 11008, 4096, 16).us();
    let fp_v = fp16::gemv(&gpu, 11008, 4096, 16).us();
    let quip_v = vq_best(&session, VqAlgorithm::QuipSharp4, gemv);
    let gptvq_v = vq_best(&session, VqAlgorithm::Gptvq2, gemv);
    let quip_v_open = vq_gc(&session, VqAlgorithm::QuipSharp4, gemv);
    for (name, us) in [
        ("AWQ-4bit (qServe)", awq_v),
        ("cutlass-16", fp_v),
        ("QuiP#-4 (VQ-LLM)", quip_v),
        ("GPTVQ-2 (VQ-LLM)", gptvq_v),
        ("QuiP#-4 (open-source style GC)", quip_v_open),
    ] {
        r.line(format!(
            "{name:32} {} ({:5.2}x AWQ)",
            fmt_us(us),
            us / awq_v
        ));
    }

    r.section("Attention decode BS1 seq 1k (relative to QoQ-4)");
    let attn = ComputeOp::attention_decode(32, 128, 1024, 1);
    let qoq = elementwise::qoq_attention(&gpu, 1, 32, 128, 1024).us();
    let flash = fp16::attention(&gpu, fp16::AttnBaseline::FlashDecoding, 1, 32, 128, 1024).us();
    let cq4 = vq_best(&session, VqAlgorithm::Cq4, attn);
    let cq2 = vq_best(&session, VqAlgorithm::Cq2, attn);
    for (name, us) in [
        ("QoQ-4bit (qServe)", qoq),
        ("Flash-16", flash),
        ("CQ-4 (VQ-LLM)", cq4),
        ("CQ-2 (VQ-LLM)", cq2),
    ] {
        r.line(format!("{name:32} {} ({:5.2}x QoQ)", fmt_us(us), us / qoq));
    }

    r.section("paper-shape checks");
    r.line(check(
        "4-bit VQ GeMV within 0.7-1.3x of AWQ (paper: 0.88x)",
        (0.7..1.3).contains(&(quip_v / awq_v)),
    ));
    r.line(check(
        "4-bit VQ attention within 0.7-1.3x of QoQ (paper: 1.01x)",
        (0.7..1.3).contains(&(cq4 / qoq)),
    ));
    r.line(check(
        "Both quantized GeMMs underperform cutlass-16",
        quip > cutlass * 0.95 && awq > cutlass * 0.95,
    ));
    r.line(check(
        "Quantized GeMV/attention beat FP16",
        quip_v < fp_v && cq4 < flash,
    ));
    r.line(check(
        "Open-source-style GC kernels are impractical (≥ 2x the optimized)",
        quip_open / quip > 2.0 || quip_v_open / quip_v > 2.0,
    ));
    r.finish();
}

fn check(what: &str, ok: bool) -> String {
    format!("[{}] {}", if ok { "MATCH" } else { "DEVIATION" }, what)
}
