//! Figure 18: relative latency of FP16 attention baselines against the
//! best-performing CQ-4 implementation across sequence length and batch.

use vqllm_bench::{fmt_us, Report};
use vqllm_core::ComputeOp;
use vqllm_gpu::GpuSpec;
use vqllm_kernels::fp16::{self, AttnBaseline};
use vqllm_kernels::{vq_kernel, AccessProfile};
use vqllm_vq::VqAlgorithm;

fn main() {
    let mut r = Report::new(
        "fig18",
        "Attention baselines vs VQ-LLM CQ-4 (paper Fig. 18)",
    );
    let gpu = GpuSpec::rtx4090();
    let vq = VqAlgorithm::Cq4.config();
    let profile = AccessProfile::default_for(&vq);

    let mut best_reduction: f64 = 0.0;
    for seq in [1024usize, 2048, 4096] {
        for batch in [1usize, 8] {
            r.section(&format!("seq {} BS{batch}", seq));
            let op = ComputeOp::attention_decode(32, 128, seq, batch);
            let (_, ours) = vq_kernel::best_plan(&gpu, &vq, &op, &profile).expect("best plan");
            r.line(format!(
                "VQ-LLM CQ-4          {} (1.00x)",
                fmt_us(ours.us())
            ));
            let mut best_fp16 = f64::INFINITY;
            for baseline in AttnBaseline::ALL {
                let out = fp16::attention(&gpu, baseline, batch, 32, 128, seq);
                best_fp16 = best_fp16.min(out.us());
                r.line(format!(
                    "{:20} {} ({:4.2}x)",
                    baseline.name(),
                    fmt_us(out.us()),
                    out.us() / ours.us()
                ));
            }
            if seq == 4096 && batch == 8 {
                best_reduction = (1.0 - ours.us() / best_fp16) * 100.0;
            }
        }
    }

    r.section("paper-shape checks");
    r.line(format!(
        "latency reduction vs best FP16 at 4k BS8: {best_reduction:.1}% (paper: 66.4%)"
    ));
    r.line(format!(
        "[{}] reduction in the 45-80% band with a 75% smaller KV footprint",
        if (45.0..=80.0).contains(&best_reduction) {
            "MATCH"
        } else {
            "DEVIATION"
        }
    ));
    r.finish();
}
