//! Figure 15: (left) optimization breakdown of CQ-2 for attention decode
//! across sequence length and batch; (right) CQ-4 latency relative to
//! CQ-2 at the best level.

use vq_llm::{ComputeOp, GpuSpec, OptLevel, Session, VqAlgorithm};
use vqllm_bench::{fmt_us, Report};

fn ladder(s: &Session, algo: VqAlgorithm, op: ComputeOp) -> Vec<(OptLevel, f64)> {
    let vq = algo.config();
    OptLevel::ALL
        .iter()
        .map(|&level| {
            let plan = s.plan_at(&vq, &op, level).expect("plan");
            (level, s.estimate(&plan).us())
        })
        .collect()
}

fn best(s: &Session, algo: VqAlgorithm, op: ComputeOp) -> f64 {
    s.best_plan(&algo.config(), &op).expect("best plan").1.us()
}

fn main() {
    let mut r = Report::new(
        "fig15",
        "Attention breakdown CQ-2 + CQ-4 relative (paper Fig. 15)",
    );
    let session = Session::builder()
        .gpu(GpuSpec::rtx4090())
        .build()
        .expect("valid session");

    r.section("(left) CQ-2 optimization ladder, Llama-7B attention decode");
    for (seq, batch) in [(1024usize, 1usize), (1024, 8), (4096, 1), (4096, 8)] {
        let op = ComputeOp::attention_decode(32, 128, seq, batch);
        let lad = ladder(&session, VqAlgorithm::Cq2, op);
        let row: Vec<String> = lad
            .iter()
            .map(|(l, us)| format!("{l} {}", fmt_us(*us).trim()))
            .collect();
        r.line(format!("{}k BS{batch}: {}", seq / 1024, row.join(" | ")));
    }

    r.section("(right) CQ-4 relative latency against CQ-2 (best level)");
    for (seq, batch) in [(1024usize, 1usize), (1024, 8), (4096, 1), (4096, 8)] {
        let op = ComputeOp::attention_decode(32, 128, seq, batch);
        let cq2 = best(&session, VqAlgorithm::Cq2, op);
        let cq4 = best(&session, VqAlgorithm::Cq4, op);
        r.line(format!(
            "{}k BS{batch}: CQ-2 {} CQ-4 {} → relative {:.2}",
            seq / 1024,
            fmt_us(cq2),
            fmt_us(cq4),
            cq4 / cq2
        ));
    }

    r.section("paper-shape checks");
    // SC-vs-O1 at 4k BS8: with real parallel supply, SC's occupancy loss
    // shows (at 1k BS1 the grid is supply-limited either way).
    let op_big = ComputeOp::attention_decode(32, 128, 4096, 8);
    let lad_big = ladder(&session, VqAlgorithm::Cq2, op_big);
    let get_big = |l: OptLevel| lad_big.iter().find(|(x, _)| *x == l).expect("level").1;
    let op = ComputeOp::attention_decode(32, 128, 1024, 1);
    let lad = ladder(&session, VqAlgorithm::Cq2, op);
    let get = |l: OptLevel| lad.iter().find(|(x, _)| *x == l).expect("level").1;
    r.line(check(
        "SC hurts vs O1 at scale (large CQ codebooks kill occupancy)",
        get_big(OptLevel::Sc) > get_big(OptLevel::O1),
    ));
    r.line(check(
        "O3 gives the major dataflow win",
        get(OptLevel::O3) < get(OptLevel::O2) * 0.8,
    ));
    r.line(check(
        "O4 adds a minor further gain",
        get(OptLevel::O4) <= get(OptLevel::O3) * 1.02,
    ));
    r.line(check(
        "O2 is minor for CQ (few hot entries)",
        (get(OptLevel::O2) - get(OptLevel::O1)).abs() / get(OptLevel::O1) < 0.15,
    ));
    let cq2 = best(&session, VqAlgorithm::Cq2, op);
    let cq4 = best(&session, VqAlgorithm::Cq4, op);
    r.line(check(
        "CQ-4 lands within 2x of CQ-2 (similar optimization behaviour)",
        cq4 / cq2 < 2.0 && cq4 / cq2 > 0.8,
    ));
    r.finish();
}

fn check(what: &str, ok: bool) -> String {
    format!("[{}] {}", if ok { "MATCH" } else { "DEVIATION" }, what)
}
