//! Concurrent load harness for the network serving front end
//! (`vq_llm::net`) — the production-hardening acceptance bin.
//!
//! Drives **hundreds of concurrent loopback TCP connections** against one
//! `NetServer` with a deliberately hostile traffic mix:
//!
//! * **streaming clients** — submit a streamed decode and consume every
//!   `token` frame promptly (the healthy fast-reader population);
//! * **poll clients** — submit with `stream:false`, wait for `done`, then
//!   exercise the `poll` verb (the request/response population);
//! * **slow readers** — submit a large streamed backlog and then never
//!   read a byte, so their bounded writer queues overflow and the server
//!   must evict them (and cancel their tickets) without ever blocking the
//!   driver thread;
//! * **mid-stream droppers** — submit, wait for `accepted`, and hang up,
//!   so reader-side EOF must cancel the orphaned work.
//!
//! Every healthy request's end-to-end latency (submit write → `done`
//! frame) is recorded; the run ends with a graceful `NetServer::drain`.
//! Results are **merged** into `BENCH_serving.json` (the file is shared
//! with `serve_bench`, so existing keys are preserved) under `net_load_*`
//! keys.
//!
//! `--smoke` asserts the CI gates (exit code 1 otherwise):
//!
//! * every healthy connection completes all of its requests with the
//!   right number of token frames;
//! * the writer-queue peak never exceeds the configured bound (the
//!   backpressure contract: slow readers cost their own connection, not
//!   unbounded server memory);
//! * every slow reader is evicted with a typed `slow_reader` disconnect
//!   and the driver still drains to idle with exactly zero inflight
//!   tokens (eviction cancelled the orphaned work);
//! * the final graceful drain completes without escalating to
//!   cancellation.

use std::io::{BufRead, BufReader, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use vq_llm::net::json::{self, Json};
use vq_llm::net::{loopback_with, percentile, proto, NetConfig};
use vq_llm::tensor::synth;
use vq_llm::{
    AdmissionConfig, Engine, ProfileConfig, ServeConfig, Session, SharedContext, VqAlgorithm,
};
use vqllm_bench::Report;

const SEQ: usize = 256;
const HEAD_DIM: usize = 32;
/// The slow readers decode against a second, fatter context so each
/// token frame is ~1.2 KB: their backlog must exceed what the kernel
/// will buffer for a never-reading peer (~4.3 MB on default Linux
/// tcp_wmem/tcp_rmem) without requiring tens of thousands of decoded
/// tokens to get there.
const HEAD_DIM_SLOW: usize = 128;
const MAX_BATCH: usize = 8;

/// The configured writer-queue bound the smoke gate checks against.
const WRITER_QUEUE_CAP: usize = 32;

/// Tokens per healthy streaming request.
const STREAM_GEN: usize = 5;
/// Tokens per poll-mode request.
const POLL_GEN: usize = 3;
/// Tokens per slow-reader request.
const SLOW_GEN: usize = 240;
/// Requests each slow reader submits up front (7200 tokens ≈ 8.6 MB of
/// token frames — 2x the kernel's loopback absorption, so the server's
/// writer is guaranteed to block and the bounded queue to overflow).
const SLOW_REQS: usize = 30;
/// Tokens per mid-stream-dropper request (never fully delivered).
const DROP_GEN: usize = 200;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Role {
    Stream,
    Poll,
    Slow,
    Drop,
}

struct Mix {
    stream: usize,
    poll: usize,
    slow: usize,
    drop: usize,
    /// Sequential requests per healthy connection.
    rounds: usize,
}

impl Mix {
    fn connections(&self) -> usize {
        self.stream + self.poll + self.slow + self.drop
    }
    fn healthy(&self) -> usize {
        self.stream + self.poll
    }
    fn healthy_requests(&self) -> usize {
        self.healthy() * self.rounds
    }
}

/// What one client thread observed.
struct Outcome {
    role: Role,
    /// Healthy requests that completed with the right frame count.
    completed: usize,
    /// End-to-end latencies (submit write → done frame), µs.
    latencies_us: Vec<f64>,
    /// Slow readers only: the server hung up on us (the desired end).
    evicted: bool,
    err: Option<String>,
}

fn query(tenant: u64, dim: usize) -> Vec<f32> {
    (0..dim)
        .map(|d| ((tenant as usize * 13 + d) as f32 * 0.21).sin())
        .collect()
}

fn connect(addr: SocketAddr) -> std::io::Result<TcpStream> {
    // The accept backlog is finite and every client dials at once:
    // retry refused connections briefly instead of failing the run.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) if Instant::now() < deadline => {
                let _ = e;
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => return Err(e),
        }
    }
}

/// Reads frames until one matches `event`; `Err` carries what went wrong.
fn read_until_event(
    reader: &mut BufReader<TcpStream>,
    event: &str,
    max: usize,
) -> Result<Json, String> {
    for _ in 0..max {
        let mut line = String::new();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| format!("read: {e}"))?;
        if n == 0 {
            return Err(format!("EOF while waiting for {event:?}"));
        }
        let v = json::parse(line.trim()).map_err(|e| format!("bad frame {line:?}: {e}"))?;
        if v.get("event").and_then(Json::as_str) == Some(event) {
            return Ok(v);
        }
        if v.get("event").and_then(Json::as_str) == Some("rejected") {
            return Err(format!("rejected while waiting for {event:?}: {line:?}"));
        }
    }
    Err(format!("no {event:?} frame within {max} frames"))
}

/// One client connection's whole life. `idx` picks the tenant id.
fn run_client(
    addr: SocketAddr,
    role: Role,
    idx: usize,
    rounds: usize,
    barrier: Arc<Barrier>,
) -> Outcome {
    let mut out = Outcome {
        role,
        completed: 0,
        latencies_us: Vec::new(),
        evicted: false,
        err: None,
    };
    let fail = |out: &mut Outcome, msg: String| {
        out.err = Some(msg);
    };

    let stream = match connect(addr) {
        Ok(s) => s,
        Err(e) => {
            barrier.wait();
            fail(&mut out, format!("connect: {e}"));
            return out;
        }
    };
    let _ = stream.set_read_timeout(Some(Duration::from_secs(120)));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(e) => {
            barrier.wait();
            fail(&mut out, format!("clone: {e}"));
            return out;
        }
    };
    let mut reader = BufReader::new(stream);
    if let Err(e) = read_until_event(&mut reader, "hello", 4) {
        barrier.wait();
        fail(&mut out, format!("hello: {e}"));
        return out;
    }

    let tenant = 1 + idx as u64;
    let q = query(
        tenant,
        if role == Role::Slow {
            HEAD_DIM_SLOW
        } else {
            HEAD_DIM
        },
    );
    let context_len = 16 + (idx % 64);
    barrier.wait();

    match role {
        Role::Stream | Role::Poll => {
            let (gen, streamed) = match role {
                Role::Stream => (STREAM_GEN, true),
                _ => (POLL_GEN, false),
            };
            for _ in 0..rounds {
                let t0 = Instant::now();
                let line = proto::submit_line(0, tenant, &q, context_len, gen, 0, None, streamed);
                if let Err(e) = writeln!(writer, "{line}") {
                    fail(&mut out, format!("submit: {e}"));
                    return out;
                }
                let accepted = match read_until_event(&mut reader, "accepted", 8) {
                    Ok(v) => v,
                    Err(e) => {
                        fail(&mut out, format!("accepted: {e}"));
                        return out;
                    }
                };
                let mut tokens = 0usize;
                loop {
                    let mut line = String::new();
                    match reader.read_line(&mut line) {
                        Ok(0) => {
                            fail(&mut out, "EOF mid-request".to_string());
                            return out;
                        }
                        Ok(_) => {}
                        Err(e) => {
                            fail(&mut out, format!("read: {e}"));
                            return out;
                        }
                    }
                    let v = match json::parse(line.trim()) {
                        Ok(v) => v,
                        Err(e) => {
                            fail(&mut out, format!("bad frame {line:?}: {e}"));
                            return out;
                        }
                    };
                    match v.get("event").and_then(Json::as_str) {
                        Some("token") => tokens += 1,
                        Some("done") => break,
                        Some("rejected") => {
                            fail(&mut out, format!("rejected: {line:?}"));
                            return out;
                        }
                        _ => {}
                    }
                }
                let want = if streamed { gen } else { 0 };
                if tokens != want {
                    fail(&mut out, format!("{tokens} token frames, wanted {want}"));
                    return out;
                }
                out.latencies_us.push(t0.elapsed().as_secs_f64() * 1e6);
                out.completed += 1;
                if role == Role::Poll {
                    // Exercise the poll verb on the finished request.
                    let id = accepted.get("id").and_then(Json::as_u64).unwrap_or(0);
                    if writeln!(writer, "{{\"verb\":\"poll\",\"id\":{id}}}").is_err() {
                        fail(&mut out, "poll write failed".to_string());
                        return out;
                    }
                    match read_until_event(&mut reader, "status", 4) {
                        Ok(v) if v.get("state").and_then(Json::as_str) == Some("finished") => {}
                        Ok(v) => {
                            fail(&mut out, format!("poll state: {v:?}"));
                            return out;
                        }
                        Err(e) => {
                            fail(&mut out, format!("poll: {e}"));
                            return out;
                        }
                    }
                }
            }
        }
        Role::Slow => {
            // Submit a frame backlog far past socket buffering (against
            // the fat context, ctx index 1), then go silent: the server
            // must evict this connection instead of buffering without
            // bound or stalling the driver.
            for _ in 0..SLOW_REQS {
                let line = proto::submit_line(1, tenant, &q, 8, SLOW_GEN, 0, None, true);
                if writeln!(writer, "{line}").is_err() {
                    out.evicted = true; // already hung up on — even better
                    return out;
                }
            }
            // Never read; probe with pings until a write fails, which is
            // the client-visible proof the server hung up. (Eviction is
            // guaranteed — the backlog exceeds kernel buffering — so the
            // deadline only bounds a regression.)
            let deadline = Instant::now() + Duration::from_secs(120);
            while Instant::now() < deadline {
                if writeln!(writer, "{{\"verb\":\"ping\"}}").is_err() {
                    out.evicted = true;
                    return out;
                }
                std::thread::sleep(Duration::from_millis(50));
            }
            fail(&mut out, "slow reader was never evicted".to_string());
        }
        Role::Drop => {
            let line = proto::submit_line(0, tenant, &q, context_len, DROP_GEN, 0, None, true);
            if let Err(e) = writeln!(writer, "{line}") {
                fail(&mut out, format!("submit: {e}"));
                return out;
            }
            if let Err(e) = read_until_event(&mut reader, "accepted", 8) {
                fail(&mut out, format!("accepted: {e}"));
                return out;
            }
            // Hang up mid-stream; the server's reader sees EOF and must
            // cancel the orphaned ticket.
        }
    }
    out
}

fn disconnects(m: &vq_llm::net::MetricsSnapshot, code: &str) -> u64 {
    m.disconnects
        .iter()
        .find(|(c, _)| *c == code)
        .map_or(0, |&(_, n)| n)
}

/// Upserts `key` in a top-level JSON object.
fn set(fields: &mut Vec<(String, Json)>, key: &str, v: Json) {
    match fields.iter_mut().find(|(k, _)| k == key) {
        Some(slot) => slot.1 = v,
        None => fields.push((key.to_string(), v)),
    }
}

fn num(n: f64) -> Json {
    Json::Num((n * 10.0).round() / 10.0)
}

/// One key per line — the same human-diffable shape `serve_bench` writes.
fn render_pretty(fields: &[(String, Json)]) -> String {
    let mut s = String::from("{\n");
    for (i, (k, v)) in fields.iter().enumerate() {
        s.push_str("  ");
        json::push_escaped(k, &mut s);
        s.push_str(": ");
        s.push_str(&json::to_string(v));
        if i + 1 < fields.len() {
            s.push(',');
        }
        s.push('\n');
    }
    s.push_str("}\n");
    s
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mix = if smoke {
        Mix {
            stream: 96,
            poll: 24,
            slow: 4,
            drop: 4,
            rounds: 1,
        }
    } else {
        Mix {
            stream: 144,
            poll: 36,
            slow: 6,
            drop: 6,
            rounds: 2,
        }
    };
    let mut report = Report::new(
        "net_load",
        "Concurrent TCP load: backpressure, eviction, and drain under a hostile mix",
    );

    let session = Session::builder()
        .cpu_threads(2)
        .weight_algo(VqAlgorithm::Gptvq2)
        .kv_algo(VqAlgorithm::Cq4)
        .build()
        .expect("session");
    let quantize = |dim: usize, seed: u64| {
        let k = synth::kv_stream(SEQ, dim, 0.85, seed);
        let v = synth::kv_stream(SEQ, dim, 0.85, seed + 1);
        let w = synth::correlated_channels(dim, dim, 4, 0.9, seed + 2);
        SharedContext::new(
            session.quantize_kv(&k, seed).expect("K"),
            session.quantize_kv(&v, seed + 1).expect("V"),
            session.quantize_weights(&w, seed + 2).expect("W"),
        )
        .expect("context")
    };
    let ctx = quantize(HEAD_DIM, 31);
    let ctx_slow = quantize(HEAD_DIM_SLOW, 41);
    let mut engine = Engine::builder()
        .backend(std::sync::Arc::clone(session.backend()))
        .weight_algo(VqAlgorithm::Gptvq2)
        .kv_algo(VqAlgorithm::Cq4)
        .serve_config(ServeConfig::new(MAX_BATCH, 4096))
        .profile_config(ProfileConfig::disabled())
        .build()
        .expect("engine");
    let handle = engine.register_context(ctx).expect("register");
    let handle_slow = engine.register_context(ctx_slow).expect("register slow");

    let cfg = AdmissionConfig {
        max_pending: 4096,
        ..AdmissionConfig::default()
    };
    let net = NetConfig {
        max_connections: 1024,
        writer_queue_cap: WRITER_QUEUE_CAP,
        slow_reader_grace: Duration::from_millis(300),
        ..NetConfig::default()
    };
    let server = loopback_with(engine, vec![handle, handle_slow], cfg, net).expect("bind loopback");
    let addr = server.local_addr();
    let client = server.client().clone();

    // Spawn every connection, synchronize on a barrier so the load lands
    // at once, and run the mix.
    let conns = mix.connections();
    let barrier = Arc::new(Barrier::new(conns + 1));
    let mut handles = Vec::with_capacity(conns);
    let mut idx = 0usize;
    for (role, n) in [
        (Role::Stream, mix.stream),
        (Role::Poll, mix.poll),
        (Role::Drop, mix.drop),
        (Role::Slow, mix.slow),
    ] {
        for _ in 0..n {
            let barrier = Arc::clone(&barrier);
            let rounds = mix.rounds;
            let i = idx;
            handles.push((
                role,
                std::thread::spawn(move || run_client(addr, role, i, rounds, barrier)),
            ));
            idx += 1;
        }
    }
    barrier.wait();
    let t0 = Instant::now();

    // Join the healthy and dropper threads first; slow readers sit
    // silent until told to hang up.
    let mut outcomes = Vec::with_capacity(conns);
    let mut slow_handles = Vec::new();
    for (role, h) in handles {
        if role == Role::Slow {
            slow_handles.push(h);
        } else {
            outcomes.push(h.join().expect("client thread"));
        }
    }
    let elapsed_s = t0.elapsed().as_secs_f64();

    // Every slow reader must be evicted with a typed disconnect.
    let evict_deadline = Instant::now() + Duration::from_secs(60);
    let slow_evictions = loop {
        let n = disconnects(&client.metrics(), "slow_reader");
        if n >= mix.slow as u64 || Instant::now() >= evict_deadline {
            break n;
        }
        std::thread::sleep(Duration::from_millis(25));
    };
    for h in slow_handles {
        outcomes.push(h.join().expect("slow client thread"));
    }

    // Evictions and EOFs cancel orphaned work: the driver must reach
    // idle with exactly zero inflight tokens before the drain.
    let idle_deadline = Instant::now() + Duration::from_secs(120);
    let mut idle_inflight = u64::MAX;
    while Instant::now() < idle_deadline {
        match client.stats() {
            Some(s) if s.front_queued == 0 && s.engine_queued == 0 && s.running == 0 => {
                idle_inflight = s.inflight_tokens;
                break;
            }
            Some(_) => std::thread::sleep(Duration::from_millis(10)),
            None => break,
        }
    }

    let m = client.metrics();
    let drain_report = server.drain(Duration::from_secs(60));

    let completed: usize = outcomes.iter().map(|o| o.completed).sum();
    let mut latencies: Vec<f64> = outcomes
        .iter()
        .flat_map(|o| o.latencies_us.iter().copied())
        .collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
    let p50_us = percentile(&latencies, 0.50);
    let p99_us = percentile(&latencies, 0.99);
    let mean_us = latencies.iter().sum::<f64>() / latencies.len().max(1) as f64;
    let max_us = latencies.iter().fold(0.0f64, |a, &b| a.max(b));
    let failures: Vec<&Outcome> = outcomes
        .iter()
        .filter(|o| o.err.is_some() && o.role != Role::Slow)
        .collect();

    report.section(&format!(
        "{conns} concurrent loopback connections ({} streaming + {} poll + {} slow + {} dropper), \
         batch {MAX_BATCH}, writer queue cap {WRITER_QUEUE_CAP}",
        mix.stream, mix.poll, mix.slow, mix.drop
    ));
    report.line(format!(
        "  healthy requests: {completed}/{} completed in {elapsed_s:.2} s",
        mix.healthy_requests()
    ));
    report.line(format!(
        "  e2e latency p50 {p50_us:9.0} us   p99 {p99_us:9.0} us   mean {mean_us:9.0} us   \
         max {max_us:9.0} us"
    ));
    report.line(format!(
        "  writer queue peak {} (cap {WRITER_QUEUE_CAP}); disconnects: slow_reader {}, eof {}, \
         error {}, idle {}",
        m.writer_queue_peak,
        disconnects(&m, "slow_reader"),
        disconnects(&m, "eof"),
        disconnects(&m, "error"),
        disconnects(&m, "idle"),
    ));
    report.line(format!(
        "  connections total {}, decoded tokens {}, idle inflight {idle_inflight}",
        m.connections_total, m.decoded_tokens
    ));
    report.line(format!(
        "  drain: completed {}, cancelled {}",
        drain_report.completed, drain_report.cancelled
    ));
    for f in &failures {
        report.line(format!(
            "  FAILURE: {}",
            f.err.as_deref().unwrap_or("unknown")
        ));
    }

    // Merge the net_load_* keys into BENCH_serving.json, preserving
    // whatever serve_bench last wrote there.
    let mut json_path = vqllm_bench::results_dir();
    json_path.pop();
    json_path.push("BENCH_serving.json");
    let mut fields = match std::fs::read_to_string(&json_path)
        .ok()
        .and_then(|s| json::parse(&s).ok())
    {
        Some(Json::Obj(fields)) => fields,
        _ => Vec::new(),
    };
    set(&mut fields, "net_load_connections", num(conns as f64));
    set(
        &mut fields,
        "net_load_requests",
        num(mix.healthy_requests() as f64),
    );
    set(&mut fields, "net_load_completed", num(completed as f64));
    set(&mut fields, "net_load_p50_us", num(p50_us));
    set(&mut fields, "net_load_p99_us", num(p99_us));
    set(&mut fields, "net_load_mean_us", num(mean_us));
    set(&mut fields, "net_load_max_us", num(max_us));
    set(
        &mut fields,
        "net_load_writer_queue_peak",
        num(m.writer_queue_peak as f64),
    );
    set(
        &mut fields,
        "net_load_writer_queue_cap",
        num(WRITER_QUEUE_CAP as f64),
    );
    set(
        &mut fields,
        "net_load_slow_reader_evictions",
        num(slow_evictions as f64),
    );
    set(
        &mut fields,
        "net_load_eof_disconnects",
        num(disconnects(&m, "eof") as f64),
    );
    set(
        &mut fields,
        "net_load_drain_completed",
        num(drain_report.completed as f64),
    );
    set(
        &mut fields,
        "net_load_drain_cancelled",
        num(drain_report.cancelled as f64),
    );
    set(&mut fields, "net_load_elapsed_s", num(elapsed_s));
    set(
        &mut fields,
        "net_load_decoded_tokens",
        num(m.decoded_tokens as f64),
    );
    let rendered = render_pretty(&fields);
    std::fs::write(&json_path, &rendered).expect("write BENCH_serving.json");
    report.section("BENCH_serving.json (net_load_* keys merged)");
    report.line(rendered.trim_end());
    report.finish();

    // --- The acceptance gates (asserted in --smoke / CI) ---
    let mut failed = false;
    if completed == mix.healthy_requests() && failures.is_empty() {
        println!(
            "OK: all {} healthy requests over {} connections completed",
            completed,
            mix.healthy()
        );
    } else {
        eprintln!(
            "FAIL: {}/{} healthy requests completed ({} client failures)",
            completed,
            mix.healthy_requests(),
            failures.len()
        );
        failed = true;
    }
    if m.writer_queue_peak <= WRITER_QUEUE_CAP as u64 {
        println!(
            "OK: writer queue peak {} within the configured bound {}",
            m.writer_queue_peak, WRITER_QUEUE_CAP
        );
    } else {
        eprintln!(
            "FAIL: writer queue peak {} exceeded the configured bound {}",
            m.writer_queue_peak, WRITER_QUEUE_CAP
        );
        failed = true;
    }
    let slow_confirmed = outcomes
        .iter()
        .filter(|o| o.role == Role::Slow && o.evicted)
        .count();
    if slow_evictions >= mix.slow as u64 && slow_confirmed == mix.slow {
        println!(
            "OK: all {} slow readers evicted (typed slow_reader disconnects, client-confirmed)",
            mix.slow
        );
    } else {
        eprintln!(
            "FAIL: slow readers evicted {slow_evictions}/{} (client-confirmed {slow_confirmed})",
            mix.slow
        );
        failed = true;
    }
    if idle_inflight == 0 {
        println!("OK: driver idled with exactly zero inflight tokens before the drain");
    } else {
        eprintln!("FAIL: driver inflight tokens at idle = {idle_inflight} (expected 0)");
        failed = true;
    }
    if drain_report.cancelled == 0 {
        println!(
            "OK: graceful drain completed without escalation ({} finished under drain)",
            drain_report.completed
        );
    } else {
        eprintln!(
            "FAIL: drain escalated to cancellation ({} cancelled)",
            drain_report.cancelled
        );
        failed = true;
    }
    if failed && smoke {
        std::process::exit(1);
    }
}
