//! Fused-vs-naive host execution speedup report (`BENCH_host.json`).
//!
//! Measures the real host kernels of `vqllm_kernels::host_exec` against
//! the naive dequantize-then-`linalg` path on large synthetic quantized
//! operands (assembled with `QuantizedTensor::from_parts` — no k-means
//! training), and emits a machine-readable `BENCH_host.json` at the
//! workspace root so future PRs have a perf trajectory to regress
//! against.
//!
//! `--smoke` runs a single-rep variant and **asserts** the headline
//! claim: the fused LUT GeMV beats naive dequantize-then-GeMV by ≥ 3×
//! single-threaded on a 4096×4096 quantized weight (exit code 1
//! otherwise) — CI runs this on every push.

use std::hint::black_box;
use std::time::Instant;
use vq_llm::kernels::host_exec::{self, HostBlocking};
use vq_llm::tensor::{linalg, metrics, Tensor2D};
use vq_llm::vq::config::CodebookScope;
use vq_llm::vq::{Codebook, CodebookSet, PackedIndices, QuantizedTensor, VqConfig};
use vqllm_bench::{fmt_us, Report};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a large quantized tensor directly from synthetic parts — random
/// Gaussian-ish codebooks and uniform packed codes — sidestepping k-means.
fn synth_quantized(cfg: VqConfig, rows: usize, cols: usize, seed: u64) -> QuantizedTensor {
    let mut rng = StdRng::seed_from_u64(seed);
    let gauss = |r: &mut StdRng| {
        // Sum of uniforms ≈ normal; plenty for a bench operand.
        let s: f64 = (0..4)
            .map(|_| (r.next_u64() >> 11) as f64 / (1u64 << 53) as f64)
            .sum();
        (s - 2.0) as f32
    };
    let scopes = CodebookSet::num_scopes(&cfg, (rows, cols));
    let stored = cfg.stored_entries();
    let books: Vec<Vec<Codebook>> = (0..cfg.residuals)
        .map(|_| {
            (0..scopes)
                .map(|_| {
                    let entries: Vec<f32> = (0..stored * cfg.vector_size)
                        .map(|_| gauss(&mut rng))
                        .collect();
                    Codebook::new(entries, cfg.vector_size, cfg.lattice).expect("codebook")
                })
                .collect()
        })
        .collect();
    let set = CodebookSet::new(cfg, (rows, cols), books).expect("codebook set");
    let vectors = rows * cols / cfg.vector_size;
    let limit = cfg.num_entries as u64;
    let streams: Vec<PackedIndices> = (0..cfg.residuals)
        .map(|_| {
            let codes: Vec<u32> = (0..vectors)
                .map(|_| (rng.next_u64() % limit) as u32)
                .collect();
            PackedIndices::pack(&codes, cfg.index_bits() as u8).expect("pack")
        })
        .collect();
    QuantizedTensor::from_parts(set, streams).expect("from_parts")
}

fn wave(n: usize, phase: f32) -> Vec<f32> {
    (0..n).map(|i| (i as f32 * phase).sin()).collect()
}

/// Best-of-`reps` wall-clock seconds for `f`.
fn time_s<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        black_box(f());
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

struct Measured {
    naive_s: f64,
    fused_s: f64,
}

impl Measured {
    fn speedup(&self) -> f64 {
        self.naive_s / self.fused_s
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let reps = if smoke { 1 } else { 3 };
    let mut report = Report::new(
        "host_speedup",
        "Fused host execution vs naive dequantize-then-linalg",
    );

    // --- Headline: LUT GeMV on a 4096×4096 quantized weight ---
    let (rows, cols) = (4096, 4096);
    let cfg = VqConfig::new(4, 256, 1, CodebookScope::PerTensor).expect("config");
    let wq = synth_quantized(cfg, rows, cols, 0x5eed);
    let x = wave(cols, 0.37);
    let single = HostBlocking::default();

    // Parity first: the measurement is meaningless if the outputs differ.
    let fused_y = host_exec::gemv_lut(&wq, &x, &single).expect("gemv_lut");
    let w_full = wq.dequantize().expect("dequantize");
    let naive_y = linalg::gemv(&w_full, &x).expect("gemv");
    assert!(
        metrics::allclose(&fused_y, &naive_y, 1e-4, 1e-4),
        "fused LUT GeMV diverged from the oracle"
    );
    drop(w_full);

    let gemv = Measured {
        naive_s: time_s(reps, || {
            let w = wq.dequantize().expect("dequantize");
            linalg::gemv(&w, &x).expect("gemv")
        }),
        fused_s: time_s(reps, || {
            host_exec::gemv_lut(&wq, &x, &single).expect("gemv_lut")
        }),
    };
    let fp16_bytes = (rows * cols * 2) as f64;
    let fused_gbps = fp16_bytes / gemv.fused_s / 1e9;
    let naive_gbps = fp16_bytes / gemv.naive_s / 1e9;
    report.section(&format!(
        "LUT GeMV  y = dequant(Wq)·x   ({rows}×{cols}, {cfg})"
    ));
    report.line(format!(
        "  naive  (dequantize + linalg::gemv): {}  ({naive_gbps:6.2} GB/s fp16-equivalent)",
        fmt_us(gemv.naive_s * 1e6)
    ));
    report.line(format!(
        "  fused  (codebook-resident LUT)    : {}  ({fused_gbps:6.2} GB/s fp16-equivalent)",
        fmt_us(gemv.fused_s * 1e6)
    ));
    report.line(format!(
        "  speedup: {:.2}x (single-threaded)",
        gemv.speedup()
    ));

    // Row-parallel scaling on top of the fused kernel.
    let threads = std::thread::available_parallelism().map_or(1, usize::from);
    let par = HostBlocking::default().with_threads(threads);
    let fused_par_s = time_s(reps, || {
        host_exec::gemv_lut(&wq, &x, &par).expect("gemv_lut")
    });
    report.line(format!(
        "  fused @ {threads} threads: {}  ({:.2}x vs 1 thread)",
        fmt_us(fused_par_s * 1e6),
        gemv.fused_s / fused_par_s
    ));

    // --- Trait orientation: y = xᵀ·dequant(Wq) (scatter-aggregate) ---
    let xr = wave(rows, 0.23);
    let fused_t = host_exec::gemv_xw(&xr, &wq, &single).expect("gemv_xw");
    let naive_t = linalg::gemv(&wq.dequantize().unwrap().transposed(), &xr).expect("gemv");
    assert!(metrics::allclose(&fused_t, &naive_t, 1e-4, 1e-4));
    let gemv_xw = Measured {
        naive_s: time_s(reps, || {
            let w = wq.dequantize().expect("dequantize").transposed();
            linalg::gemv(&w, &xr).expect("gemv")
        }),
        fused_s: time_s(reps, || {
            host_exec::gemv_xw(&xr, &wq, &single).expect("gemv_xw")
        }),
    };
    report.section("Backend GeMV  y = xᵀ·dequant(Wq)   (code aggregation)");
    report.line(format!(
        "  naive {}   fused {}   speedup {:.2}x",
        fmt_us(gemv_xw.naive_s * 1e6),
        fmt_us(gemv_xw.fused_s * 1e6),
        gemv_xw.speedup()
    ));

    // --- Fused GeMM (streamed single-row panels) ---
    let (gk, gn, gm) = if smoke {
        (1024, 1024, 16)
    } else {
        (2048, 2048, 32)
    };
    let wq_g = synth_quantized(cfg, gk, gn, 0xbeef);
    let a = Tensor2D::from_fn(gm, gk, |r, c| ((r * 31 + c) as f32 * 0.11).sin());
    let fused_c = host_exec::gemm_fused(&a, &wq_g, &single).expect("gemm_fused");
    let naive_c = linalg::matmul(&a, &wq_g.dequantize().unwrap()).expect("matmul");
    assert!(metrics::allclose(
        fused_c.as_slice(),
        naive_c.as_slice(),
        1e-4,
        1e-4
    ));
    let gemm = Measured {
        naive_s: time_s(reps, || {
            let w = wq_g.dequantize().expect("dequantize");
            linalg::matmul(&a, &w).expect("matmul")
        }),
        fused_s: time_s(reps, || {
            host_exec::gemm_fused(&a, &wq_g, &single).expect("gemm_fused")
        }),
    };
    report.section(&format!("Fused GeMM  C = A×dequant(Wq)   ({gm}×{gk}×{gn})"));
    report.line(format!(
        "  naive {}   fused {}   speedup {:.2}x",
        fmt_us(gemm.naive_s * 1e6),
        fmt_us(gemm.fused_s * 1e6),
        gemm.speedup()
    ));

    // --- Fused attention decode over quantized K/V ---
    let (seq, head_dim) = if smoke { (2048, 128) } else { (4096, 128) };
    let kv_cfg =
        VqConfig::new(4, 256, 1, CodebookScope::PerChannelGroup { channels: 4 }).expect("config");
    let kq = synth_quantized(kv_cfg, seq, head_dim, 0x6b);
    let vq = synth_quantized(kv_cfg, seq, head_dim, 0x7777);
    let q = wave(head_dim, 0.31);
    let scale = 1.0 / (head_dim as f32).sqrt();
    let fused_o = host_exec::attention_decode_fused(&q, &kq, &vq, &single).expect("attention");
    let naive_o = linalg::attention_decode_ref(
        &q,
        &kq.dequantize().unwrap(),
        &vq.dequantize().unwrap(),
        scale,
    )
    .expect("attention ref");
    assert!(metrics::allclose(&fused_o, &naive_o, 1e-4, 1e-4));
    let attn = Measured {
        naive_s: time_s(reps, || {
            let k = kq.dequantize().expect("dequantize K");
            let v = vq.dequantize().expect("dequantize V");
            linalg::attention_decode_ref(&q, &k, &v, scale).expect("attention ref")
        }),
        fused_s: time_s(reps, || {
            host_exec::attention_decode_fused(&q, &kq, &vq, &single).expect("attention")
        }),
    };
    report.section(&format!(
        "Fused attention decode   (seq {seq}, head_dim {head_dim}, {kv_cfg})"
    ));
    report.line(format!(
        "  naive {}   fused {}   speedup {:.2}x",
        fmt_us(attn.naive_s * 1e6),
        fmt_us(attn.fused_s * 1e6),
        attn.speedup()
    ));

    // --- Machine-readable trajectory ---
    let json = format!(
        "{{\n  \"gemv_rows\": {rows},\n  \"gemv_cols\": {cols},\n  \
         \"gemv_naive_ms\": {:.3},\n  \"gemv_fused_ms\": {:.3},\n  \
         \"gemv_speedup\": {:.3},\n  \"gemv_fused_gbps\": {:.3},\n  \
         \"gemv_naive_gbps\": {:.3},\n  \"gemv_parallel_threads\": {threads},\n  \
         \"gemv_parallel_ms\": {:.3},\n  \"gemv_xw_speedup\": {:.3},\n  \
         \"gemm_speedup\": {:.3},\n  \"attention_speedup\": {:.3},\n  \
         \"smoke\": {smoke}\n}}\n",
        gemv.naive_s * 1e3,
        gemv.fused_s * 1e3,
        gemv.speedup(),
        fused_gbps,
        naive_gbps,
        fused_par_s * 1e3,
        gemv_xw.speedup(),
        gemm.speedup(),
        attn.speedup(),
    );
    let mut json_path = vqllm_bench::results_dir();
    json_path.pop();
    json_path.push("BENCH_host.json");
    std::fs::write(&json_path, &json).expect("write BENCH_host.json");
    report.section("BENCH_host.json");
    report.line(json.trim_end());
    report.finish();

    // --- The acceptance gate ---
    if gemv.speedup() < 3.0 {
        eprintln!(
            "FAIL: fused LUT GeMV speedup {:.2}x < 3x over naive dequantize-then-gemv",
            gemv.speedup()
        );
        std::process::exit(1);
    }
    println!(
        "OK: fused LUT GeMV {:.2}x over naive (>= 3x required)",
        gemv.speedup()
    );
}
