//! Fused-vs-naive host execution speedup report (`BENCH_host.json`).
//!
//! Measures the real host kernels of `vqllm_kernels::host_exec` against
//! the naive dequantize-then-`linalg` path on large synthetic quantized
//! operands (assembled with `QuantizedTensor::from_parts` — no k-means
//! training), and emits a machine-readable `BENCH_host.json` at the
//! workspace root so future PRs have a perf trajectory to regress
//! against.
//!
//! `--smoke` runs a reduced-size variant and **asserts** the gates CI
//! relies on (exit code 1 otherwise):
//!
//! * fused LUT GeMV ≥ 3× over naive dequantize-then-GeMV (4096², 1 thread)
//! * panel-blocked fused GeMM ≥ 2.5× over naive dequantize-then-matmul
//! * fused attention decode ≥ 3× over the dequantized reference
//! * pool-parallel GeMV no slower than serial at any core count, and
//!   ≥ 1.8× over single-threaded when ≥ 4 cores are available
//! * batched LUT GeMV ≥ 1.5× over looping the single-activation kernel

use std::hint::black_box;
use std::time::Instant;
use vq_llm::kernels::host_exec::{self, pool::WorkerPool, simd, HostBlocking};
use vq_llm::tensor::{linalg, metrics, Tensor2D};
use vq_llm::vq::config::CodebookScope;
use vq_llm::vq::{Codebook, CodebookSet, PackedIndices, QuantizedTensor, VqConfig};
use vqllm_bench::{fmt_us, Report};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a large quantized tensor directly from synthetic parts — random
/// Gaussian-ish codebooks and uniform packed codes — sidestepping k-means.
fn synth_quantized(cfg: VqConfig, rows: usize, cols: usize, seed: u64) -> QuantizedTensor {
    let mut rng = StdRng::seed_from_u64(seed);
    let gauss = |r: &mut StdRng| {
        // Sum of uniforms ≈ normal; plenty for a bench operand.
        let s: f64 = (0..4)
            .map(|_| (r.next_u64() >> 11) as f64 / (1u64 << 53) as f64)
            .sum();
        (s - 2.0) as f32
    };
    let scopes = CodebookSet::num_scopes(&cfg, (rows, cols));
    let stored = cfg.stored_entries();
    let books: Vec<Vec<Codebook>> = (0..cfg.residuals)
        .map(|_| {
            (0..scopes)
                .map(|_| {
                    let entries: Vec<f32> = (0..stored * cfg.vector_size)
                        .map(|_| gauss(&mut rng))
                        .collect();
                    Codebook::new(entries, cfg.vector_size, cfg.lattice).expect("codebook")
                })
                .collect()
        })
        .collect();
    let set = CodebookSet::new(cfg, (rows, cols), books).expect("codebook set");
    let vectors = rows * cols / cfg.vector_size;
    let limit = cfg.num_entries as u64;
    let streams: Vec<PackedIndices> = (0..cfg.residuals)
        .map(|_| {
            let codes: Vec<u32> = (0..vectors)
                .map(|_| (rng.next_u64() % limit) as u32)
                .collect();
            PackedIndices::pack(&codes, cfg.index_bits() as u8).expect("pack")
        })
        .collect();
    QuantizedTensor::from_parts(set, streams).expect("from_parts")
}

fn wave(n: usize, phase: f32) -> Vec<f32> {
    (0..n).map(|i| (i as f32 * phase).sin()).collect()
}

/// Best-of-`reps` wall-clock seconds for `f` (best-of suppresses the
/// scheduling noise of shared CI/VM cores that a mean would absorb).
fn time_s<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        black_box(f());
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

struct Measured {
    naive_s: f64,
    fused_s: f64,
}

impl Measured {
    fn speedup(&self) -> f64 {
        self.naive_s / self.fused_s
    }
}

/// A CI gate: record, report, and fail the process at exit if violated.
struct Gates {
    failures: Vec<String>,
}

impl Gates {
    fn check(&mut self, what: &str, value: f64, min: f64) {
        if value < min {
            self.failures
                .push(format!("{what}: {value:.2} < required {min:.2}"));
        } else {
            println!("OK: {what} {value:.2} (>= {min:.2} required)");
        }
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let reps = 3;
    let mut report = Report::new(
        "host_speedup",
        "Fused host execution vs naive dequantize-then-linalg",
    );
    let mut gates = Gates {
        failures: Vec::new(),
    };

    // --- Headline: LUT GeMV on a 4096×4096 quantized weight ---
    let (rows, cols) = (4096, 4096);
    let cfg = VqConfig::new(4, 256, 1, CodebookScope::PerTensor).expect("config");
    let wq = synth_quantized(cfg, rows, cols, 0x5eed);
    let x = wave(cols, 0.37);
    let single = HostBlocking::default();

    // Parity first: the measurement is meaningless if the outputs differ.
    let fused_y = host_exec::gemv_lut(&wq, &x, &single).expect("gemv_lut");
    let w_full = wq.dequantize().expect("dequantize");
    let naive_y = linalg::gemv(&w_full, &x).expect("gemv");
    assert!(
        metrics::allclose(&fused_y, &naive_y, 1e-4, 1e-4),
        "fused LUT GeMV diverged from the oracle"
    );
    drop(w_full);

    let gemv = Measured {
        naive_s: time_s(reps, || {
            let w = wq.dequantize().expect("dequantize");
            linalg::gemv(&w, &x).expect("gemv")
        }),
        fused_s: time_s(reps, || {
            host_exec::gemv_lut(&wq, &x, &single).expect("gemv_lut")
        }),
    };
    let fp16_bytes = (rows * cols * 2) as f64;
    let fused_gbps = fp16_bytes / gemv.fused_s / 1e9;
    let naive_gbps = fp16_bytes / gemv.naive_s / 1e9;
    report.section(&format!(
        "LUT GeMV  y = dequant(Wq)·x   ({rows}×{cols}, {cfg}, simd tier {})",
        simd::tier()
    ));
    report.line(format!(
        "  naive  (dequantize + linalg::gemv): {}  ({naive_gbps:6.2} GB/s fp16-equivalent)",
        fmt_us(gemv.naive_s * 1e6)
    ));
    report.line(format!(
        "  fused  (codebook-resident LUT)    : {}  ({fused_gbps:6.2} GB/s fp16-equivalent)",
        fmt_us(gemv.fused_s * 1e6)
    ));
    report.line(format!(
        "  speedup: {:.2}x (single-threaded)",
        gemv.speedup()
    ));

    // --- Pool-parallel scaling on top of the fused kernel ---
    // Threads come from the machine, and the *real* count is recorded: the
    // partitions run on the shared persistent WorkerPool (spawned once),
    // so parallel dispatch costs queue pushes, not thread spawns.
    let threads = std::thread::available_parallelism().map_or(1, usize::from);
    WorkerPool::shared(); // warm outside the timed region
    let par = HostBlocking::default().with_threads(threads);
    let fused_par_s = time_s(reps, || {
        host_exec::gemv_lut(&wq, &x, &par).expect("gemv_lut")
    });
    let par_speedup = gemv.fused_s / fused_par_s;
    report.line(format!(
        "  fused @ {threads} threads (persistent pool): {}  ({par_speedup:.2}x vs 1 thread)",
        fmt_us(fused_par_s * 1e6)
    ));
    // At any core count the pool must not lose to serial (PR 2's scoped
    // spawns did); beyond that, scaling is only gated where the hardware
    // can express it.
    let par4_speedup = if threads >= 4 {
        let par4 = HostBlocking::default().with_threads(4);
        let s = time_s(reps, || {
            host_exec::gemv_lut(&wq, &x, &par4).expect("gemv_lut")
        });
        report.line(format!(
            "  fused @ 4 threads: {}  ({:.2}x vs 1 thread)",
            fmt_us(s * 1e6),
            gemv.fused_s / s
        ));
        gemv.fused_s / s
    } else {
        report.line(format!(
            "  ({threads} core(s) available: 4-thread scaling gate skipped)"
        ));
        par_speedup
    };

    // --- Batched LUT GeMV (the serving-layer multi-token decode shape) ---
    let batch = 8usize;
    let acts = Tensor2D::from_fn(batch, cols, |b, c| ((b * 31 + c) as f32 * 0.19).sin());
    let batched = host_exec::gemv_lut_batch(&wq, &acts, &single).expect("gemv_lut_batch");
    for b in 0..batch {
        let one = host_exec::gemv_lut(&wq, acts.row(b), &single).expect("gemv_lut");
        let col: Vec<f32> = (0..rows).map(|r| batched.get(r, b)).collect();
        assert!(
            metrics::allclose(&col, &one, 1e-4, 1e-4),
            "batched LUT GeMV diverged from per-activation fused (lane {b})"
        );
    }
    let gemv_batch = Measured {
        naive_s: time_s(reps, || {
            for b in 0..batch {
                black_box(host_exec::gemv_lut(&wq, acts.row(b), &single).expect("gemv_lut"));
            }
        }),
        fused_s: time_s(reps, || {
            host_exec::gemv_lut_batch(&wq, &acts, &single).expect("gemv_lut_batch")
        }),
    };
    report.section(&format!(
        "Batched LUT GeMV  (batch {batch}: shared code decode + B-wide LUT slabs)"
    ));
    report.line(format!(
        "  {batch}× single {}   batched {}   speedup {:.2}x",
        fmt_us(gemv_batch.naive_s * 1e6),
        fmt_us(gemv_batch.fused_s * 1e6),
        gemv_batch.speedup()
    ));

    // --- Trait orientation: y = xᵀ·dequant(Wq) (scatter-aggregate) ---
    let xr = wave(rows, 0.23);
    let fused_t = host_exec::gemv_xw(&xr, &wq, &single).expect("gemv_xw");
    let naive_t = linalg::gemv(&wq.dequantize().unwrap().transposed(), &xr).expect("gemv");
    assert!(metrics::allclose(&fused_t, &naive_t, 1e-4, 1e-4));
    let gemv_xw = Measured {
        naive_s: time_s(reps, || {
            let w = wq.dequantize().expect("dequantize").transposed();
            linalg::gemv(&w, &xr).expect("gemv")
        }),
        fused_s: time_s(reps, || {
            host_exec::gemv_xw(&xr, &wq, &single).expect("gemv_xw")
        }),
    };
    report.section("Backend GeMV  y = xᵀ·dequant(Wq)   (code aggregation)");
    report.line(format!(
        "  naive {}   fused {}   speedup {:.2}x",
        fmt_us(gemv_xw.naive_s * 1e6),
        fmt_us(gemv_xw.fused_s * 1e6),
        gemv_xw.speedup()
    ));

    // --- Fused GeMM (panel-blocked + register-tiled micro-kernel) ---
    let (gk, gn, gm) = if smoke {
        (1024, 1024, 16)
    } else {
        (2048, 2048, 32)
    };
    let wq_g = synth_quantized(cfg, gk, gn, 0xbeef);
    let a = Tensor2D::from_fn(gm, gk, |r, c| ((r * 31 + c) as f32 * 0.11).sin());
    let fused_c = host_exec::gemm_fused(&a, &wq_g, &single).expect("gemm_fused");
    let naive_c = linalg::matmul(&a, &wq_g.dequantize().unwrap()).expect("matmul");
    assert!(metrics::allclose(
        fused_c.as_slice(),
        naive_c.as_slice(),
        1e-4,
        1e-4
    ));
    let gemm = Measured {
        naive_s: time_s(reps, || {
            let w = wq_g.dequantize().expect("dequantize");
            linalg::matmul(&a, &w).expect("matmul")
        }),
        fused_s: time_s(reps, || {
            host_exec::gemm_fused(&a, &wq_g, &single).expect("gemm_fused")
        }),
    };
    report.section(&format!(
        "Fused GeMM  C = A×dequant(Wq)   ({gm}×{gk}×{gn}, K-panels + {}×{} tiles)",
        host_exec::simd::GEMM_MR,
        host_exec::simd::GEMM_NR
    ));
    report.line(format!(
        "  naive {}   fused {}   speedup {:.2}x",
        fmt_us(gemm.naive_s * 1e6),
        fmt_us(gemm.fused_s * 1e6),
        gemm.speedup()
    ));

    // --- Fused attention decode over quantized K/V ---
    let (seq, head_dim) = if smoke { (2048, 128) } else { (4096, 128) };
    let kv_cfg =
        VqConfig::new(4, 256, 1, CodebookScope::PerChannelGroup { channels: 4 }).expect("config");
    let kq = synth_quantized(kv_cfg, seq, head_dim, 0x6b);
    let vq = synth_quantized(kv_cfg, seq, head_dim, 0x7777);
    let q = wave(head_dim, 0.31);
    let scale = 1.0 / (head_dim as f32).sqrt();
    let fused_o = host_exec::attention_decode_fused(&q, &kq, &vq, &single).expect("attention");
    let naive_o = linalg::attention_decode_ref(
        &q,
        &kq.dequantize().unwrap(),
        &vq.dequantize().unwrap(),
        scale,
    )
    .expect("attention ref");
    assert!(metrics::allclose(&fused_o, &naive_o, 1e-4, 1e-4));
    let attn = Measured {
        naive_s: time_s(reps, || {
            let k = kq.dequantize().expect("dequantize K");
            let v = vq.dequantize().expect("dequantize V");
            linalg::attention_decode_ref(&q, &k, &v, scale).expect("attention ref")
        }),
        fused_s: time_s(reps, || {
            host_exec::attention_decode_fused(&q, &kq, &vq, &single).expect("attention")
        }),
    };
    report.section(&format!(
        "Fused attention decode   (seq {seq}, head_dim {head_dim}, {kv_cfg})"
    ));
    report.line(format!(
        "  naive {}   fused {}   speedup {:.2}x",
        fmt_us(attn.naive_s * 1e6),
        fmt_us(attn.fused_s * 1e6),
        attn.speedup()
    ));

    // --- Machine-readable trajectory ---
    let json = format!(
        "{{\n  \"gemv_rows\": {rows},\n  \"gemv_cols\": {cols},\n  \
         \"gemv_naive_ms\": {:.3},\n  \"gemv_fused_ms\": {:.3},\n  \
         \"gemv_speedup\": {:.3},\n  \"gemv_fused_gbps\": {:.3},\n  \
         \"gemv_naive_gbps\": {:.3},\n  \"gemv_parallel_threads\": {threads},\n  \
         \"gemv_parallel_ms\": {:.3},\n  \"gemv_parallel_speedup\": {:.3},\n  \
         \"gemv_parallel4_speedup\": {:.3},\n  \"gemv_batch\": {batch},\n  \
         \"gemv_batch_speedup\": {:.3},\n  \"gemv_xw_speedup\": {:.3},\n  \
         \"gemm_m\": {gm},\n  \"gemm_speedup\": {:.3},\n  \
         \"attention_speedup\": {:.3},\n  \"simd_tier\": \"{}\",\n  \
         \"smoke\": {smoke}\n}}\n",
        gemv.naive_s * 1e3,
        gemv.fused_s * 1e3,
        gemv.speedup(),
        fused_gbps,
        naive_gbps,
        fused_par_s * 1e3,
        par_speedup,
        par4_speedup,
        gemv_batch.speedup(),
        gemv_xw.speedup(),
        gemm.speedup(),
        attn.speedup(),
        simd::tier(),
    );
    let mut json_path = vqllm_bench::results_dir();
    json_path.pop();
    json_path.push("BENCH_host.json");
    std::fs::write(&json_path, &json).expect("write BENCH_host.json");
    report.section("BENCH_host.json");
    report.line(json.trim_end());
    report.finish();

    // --- The acceptance gates (asserted in --smoke / CI) ---
    gates.check("fused LUT GeMV speedup over naive", gemv.speedup(), 3.0);
    gates.check("panel-blocked fused GeMM speedup", gemm.speedup(), 2.5);
    gates.check("fused attention decode speedup", attn.speedup(), 3.0);
    gates.check(
        "batched LUT GeMV speedup over looped",
        gemv_batch.speedup(),
        1.5,
    );
    // The pool must never lose to serial (15 % noise allowance on shared
    // 1-core runners where both paths are the same code).
    gates.check(
        "pool-parallel GeMV vs serial (1.0 = parity)",
        par_speedup,
        0.85,
    );
    if threads >= 4 {
        gates.check("pool-parallel GeMV scaling @ 4 threads", par4_speedup, 1.8);
    }

    if gates.failures.is_empty() {
        println!("OK: all host-speedup gates passed");
    } else if smoke {
        for f in &gates.failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    } else {
        for f in &gates.failures {
            eprintln!("WARN (non-smoke, not fatal): {f}");
        }
    }
}
