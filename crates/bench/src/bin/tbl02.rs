//! Table II: VQ algorithms and their configurations.

use vqllm_bench::Report;
use vqllm_vq::VqAlgorithm;

fn main() {
    let mut r = Report::new("tbl02", "VQ algorithm configurations (paper Tbl. II)");
    r.line(format!(
        "{:10} {:>12} {:>8} {:>8} {:>9} {:>12}",
        "Algorithm", "Compression", "Vector", "#Entry", "Residual", "Equiv. bits"
    ));
    for algo in VqAlgorithm::ALL {
        let cfg = algo.config();
        r.line(format!(
            "{:10} {:>11.2}% {:>8} {:>8} {:>9} {:>12.2}",
            algo.name(),
            cfg.compression_vs_fp16() * 100.0,
            cfg.vector_size,
            cfg.num_entries,
            cfg.residuals,
            cfg.equivalent_bits(),
        ));
    }
    r.blank();
    r.line("* QuiP# uses a lattice codebook: 65536 logical entries, only 256");
    r.line("  stored entries are looked up, with sign bits applied via bit ops.");
    r.line("Paper values: 25% / 18.75% / 12.5% / 25% / 12.5% — matched exactly.");
    r.finish();
}
