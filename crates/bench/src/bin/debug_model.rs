//! Scratch harness for inspecting per-kernel latency breakdowns while
//! calibrating the performance model, driven through one `Session` per
//! device.

use vq_llm::{ComputeOp, GpuSpec, OptLevel, QuantScheme, Session, VqAlgorithm};
use vqllm_kernels::{elementwise, fp16};

fn main() {
    for gpu in [GpuSpec::rtx4090(), GpuSpec::a40()] {
        println!("=== {} ===", gpu);
        let session = Session::builder()
            .gpu(gpu.clone())
            .build()
            .expect("valid session");

        for (name, algo, op) in [
            (
                "GeMV 4096x4096 QuiP#-4",
                VqAlgorithm::QuipSharp4,
                ComputeOp::Gemv {
                    n: 4096,
                    k: 4096,
                    batch: 16,
                },
            ),
            (
                "GeMV 11008x4096 QuiP#-4",
                VqAlgorithm::QuipSharp4,
                ComputeOp::Gemv {
                    n: 11008,
                    k: 4096,
                    batch: 16,
                },
            ),
            (
                "Attn 1152 bs16 CQ-4",
                VqAlgorithm::Cq4,
                ComputeOp::attention_decode(32, 128, 1152, 16),
            ),
        ] {
            let vq = algo.config();
            for level in OptLevel::ALL {
                let plan = session.plan_at(&vq, &op, level).unwrap();
                let out = session.estimate(&plan);
                println!(
                    "{name} {level}: {:8.1} us | dram {:8.1} compute {:8.1} int {:8.1} smem {:8.1} | occ {} grid {}",
                    out.us(), out.latency.dram_us, out.latency.compute_us, out.latency.int_us, out.latency.smem_us,
                    out.latency.occupancy.blocks_per_sm, out.launch.grid_blocks,
                );
            }
        }
        println!(
            "FP16 GeMV 4096: {:.1} us",
            fp16::gemv(&gpu, 4096, 4096, 16).us()
        );
        println!(
            "FP16 attn 1152 bs16: {:.1} us",
            fp16::attention(&gpu, fp16::AttnBaseline::FlashDecoding, 16, 32, 128, 1152).us()
        );
        println!(
            "AWQ GeMV 4096: {:.1} us",
            elementwise::awq_gemv(&gpu, 4096, 4096, 16).us()
        );
        println!(
            "QoQ attn 1152 bs16: {:.1} us",
            elementwise::qoq_attention(&gpu, 16, 32, 128, 1152).us()
        );

        for scheme in [
            QuantScheme::Fp16,
            QuantScheme::QServe4,
            QuantScheme::vq_llm_4bit(),
            QuantScheme::vq_llm_2bit(),
        ] {
            let r = session.pipeline(scheme).generate(1024, 256, 16);
            println!(
                "E2E {:24} prefill {:8.1} ms decode {:8.1} ms | step: lin {:7.1} attn {:7.1} elem {:6.1} us",
                r.scheme, r.prefill_ms, r.decode_ms, r.step.linear_us, r.step.attention_us, r.step.elementwise_us
            );
        }
        let stats = session.cache_stats();
        println!(
            "plan cache: {} plans, {} hits / {} misses",
            session.plan_cache().len(),
            stats.hits,
            stats.misses
        );
    }
}
