//! Scratch harness for inspecting per-kernel latency breakdowns while
//! calibrating the performance model.

use vqllm_core::{ComputeOp, KernelPlanner, OptLevel, ProfileSummary};
use vqllm_gpu::GpuSpec;
use vqllm_kernels::{elementwise, fp16, vq_kernel, AccessProfile};
use vqllm_llm::{LlamaConfig, Pipeline, QuantScheme};
use vqllm_vq::VqAlgorithm;

fn main() {
    for gpu in [GpuSpec::rtx4090(), GpuSpec::a40()] {
        println!("=== {} ===", gpu);
        let planner = KernelPlanner::new(gpu.clone());

        for (name, algo, op) in [
            ("GeMV 4096x4096 QuiP#-4", VqAlgorithm::QuipSharp4, ComputeOp::Gemv { n: 4096, k: 4096, batch: 16 }),
            ("GeMV 11008x4096 QuiP#-4", VqAlgorithm::QuipSharp4, ComputeOp::Gemv { n: 11008, k: 4096, batch: 16 }),
            ("Attn 1152 bs16 CQ-4", VqAlgorithm::Cq4, ComputeOp::attention_decode(32, 128, 1152, 16)),
        ] {
            let vq = algo.config();
            for level in [OptLevel::Gc, OptLevel::Sc, OptLevel::O1, OptLevel::O2, OptLevel::O3, OptLevel::O4] {
                let plan = planner.plan_at(&vq, &op, level, &ProfileSummary::default_for(&vq)).unwrap();
                let out = vq_kernel::estimate(&gpu, &plan, &AccessProfile::default_for(&vq));
                println!(
                    "{name} {level}: {:8.1} us | dram {:8.1} compute {:8.1} int {:8.1} smem {:8.1} | occ {} grid {}",
                    out.us(), out.latency.dram_us, out.latency.compute_us, out.latency.int_us, out.latency.smem_us,
                    out.latency.occupancy.blocks_per_sm, out.launch.grid_blocks,
                );
            }
        }
        println!("FP16 GeMV 4096: {:.1} us", fp16::gemv(&gpu, 4096, 4096, 16).us());
        println!("FP16 attn 1152 bs16: {:.1} us", fp16::attention(&gpu, fp16::AttnBaseline::FlashDecoding, 16, 32, 128, 1152).us());
        println!("AWQ GeMV 4096: {:.1} us", elementwise::awq_gemv(&gpu, 4096, 4096, 16).us());
        println!("QoQ attn 1152 bs16: {:.1} us", elementwise::qoq_attention(&gpu, 16, 32, 128, 1152).us());

        for scheme in [QuantScheme::Fp16, QuantScheme::QServe4, QuantScheme::vq_llm_4bit(), QuantScheme::vq_llm_2bit()] {
            let r = Pipeline::new(gpu.clone(), LlamaConfig::llama_7b(), scheme).generate(1024, 256, 16);
            println!(
                "E2E {:24} prefill {:8.1} ms decode {:8.1} ms | step: lin {:7.1} attn {:7.1} elem {:6.1} us",
                r.scheme, r.prefill_ms, r.decode_ms, r.step.linear_us, r.step.attention_us, r.step.elementwise_us
            );
        }
    }
}
