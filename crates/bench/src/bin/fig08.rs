//! Figure 8: codebook-entry access frequency of one thread block in a
//! VQ-GeMM kernel with `VQ<8,12,2>` (AQLM-3).
//!
//! We quantize a synthetic Llama-like weight slice with AQLM-3, profile
//! the entry access histogram, and report the µ / µ+3σ structure the
//! codebook cache exploits.

use vqllm_bench::{bar, Report};
use vqllm_tensor::synth;
use vqllm_vq::stats::AccessHistogram;
use vqllm_vq::{VqAlgorithm, VqQuantizer};

fn main() {
    let mut r = Report::new(
        "fig08",
        "Codebook access frequency, AQLM-3 VQ<8,12,2> (paper Fig. 8)",
    );
    let vq = VqAlgorithm::Aqlm3.config();
    // A weight slice large enough to exercise all 4096 entries.
    let w = synth::gaussian_with_outliers(384, 1024, 0.02, 0.01, 8.0, 42);
    let q = VqQuantizer::new(vq).quantize(&w, 7).expect("quantize");
    let hist = AccessHistogram::profile(&q, 0);

    let mean = hist.mean();
    let hot_thresh = hist.hot_threshold();
    let num_hot = hist.num_hot();
    let num_cold = hist.num_cold();
    let total = hist.counts().len();

    r.line(format!("entries: {total}, accesses: {}", hist.total()));
    r.line(format!(
        "µ = {mean:.2}, σ = {:.2}, µ+3σ = {hot_thresh:.2}",
        hist.std_dev()
    ));
    r.line(format!(
        "hot entries (> µ+3σ): {num_hot}   (paper: 15-30 for AQLM-3)"
    ));
    r.line(format!(
        "entries at/below µ: {num_cold} = {:.0}%   (paper: 'over half')",
        num_cold as f64 * 100.0 / total as f64
    ));

    r.section("top-32 entry histogram (sorted by frequency)");
    let mut counts: Vec<u64> = hist.counts().to_vec();
    counts.sort_unstable_by_key(|&c| std::cmp::Reverse(c));
    let max = counts[0] as f64;
    for (i, &c) in counts.iter().take(32).enumerate() {
        r.line(format!("rank {i:4}: {c:6} {}", bar(c as f64, max, 48)));
    }
    r.line(format!(
        "...          µ ≈ {mean:.1}, µ+3σ ≈ {hot_thresh:.1}"
    ));

    r.section("claims checked");
    r.line(format!(
        "[{}] a small hot set exists (1 ≤ hot ≤ 64)",
        if (1..=64).contains(&num_hot) {
            "MATCH"
        } else {
            "DEVIATION"
        }
    ));
    r.line(format!(
        "[{}] at least 40% of entries sit at/below the mean",
        if num_cold * 5 >= total * 2 {
            "MATCH"
        } else {
            "DEVIATION"
        }
    ));
    r.finish();
}
