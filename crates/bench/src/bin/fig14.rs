//! Figure 14: breakdown of the optimization ladder for GeMM (upper) and
//! GeMV (lower) across QuiP#-4, AQLM-3 and GPTVQ-2 on Llama-7B shapes.
//!
//! Each level of Tbl. IV is applied cumulatively: GC, SC, O1 (hierarchical
//! shared caching), O2 (+register caching), O3 (+codebook-centric
//! dataflow), O4 (+hierarchical fusion).

use vq_llm::{ComputeOp, GpuSpec, OptLevel, Session, VqAlgorithm};
use vqllm_bench::{fmt_us, Report};

fn ladder(s: &Session, algo: VqAlgorithm, op: ComputeOp) -> Vec<(OptLevel, f64)> {
    let vq = algo.config();
    OptLevel::ALL
        .iter()
        .map(|&level| {
            let plan = s.plan_at(&vq, &op, level).expect("plan");
            (level, s.estimate(&plan).us())
        })
        .collect()
}

fn main() {
    let mut r = Report::new(
        "fig14",
        "Optimization breakdown, GeMM & GeMV (paper Fig. 14)",
    );
    let session = Session::builder()
        .gpu(GpuSpec::rtx4090())
        .build()
        .expect("valid session");

    for (kind, op) in [
        (
            "GeMM 2048x11008x4096",
            ComputeOp::Gemm {
                m: 2048,
                n: 11008,
                k: 4096,
            },
        ),
        (
            "GeMV 11008x4096 BS1",
            ComputeOp::Gemv {
                n: 11008,
                k: 4096,
                batch: 1,
            },
        ),
        (
            "GeMV 11008x4096 BS16",
            ComputeOp::Gemv {
                n: 11008,
                k: 4096,
                batch: 16,
            },
        ),
    ] {
        r.section(kind);
        for algo in VqAlgorithm::WEIGHT {
            let lad = ladder(&session, algo, op);
            let row: Vec<String> = lad
                .iter()
                .map(|(l, us)| format!("{l} {}", fmt_us(*us).trim()))
                .collect();
            r.line(format!("{:9} | {}", algo.name(), row.join(" | ")));
        }
    }

    r.section("paper-shape checks (GeMM)");
    let gemm = ComputeOp::Gemm {
        m: 2048,
        n: 11008,
        k: 4096,
    };
    let quip = ladder(&session, VqAlgorithm::QuipSharp4, gemm);
    let get =
        |lad: &[(OptLevel, f64)], l: OptLevel| lad.iter().find(|(x, _)| *x == l).expect("level").1;
    r.line(check(
        "QuiP#: SC ≈ O1 (2 KB codebook fits either way)",
        (get(&quip, OptLevel::Sc) - get(&quip, OptLevel::O1)).abs() / get(&quip, OptLevel::O1)
            < 0.1,
    ));
    r.line(check(
        "QuiP#: O3 regresses GeMM (residual split → redundant compute)",
        get(&quip, OptLevel::O3) > get(&quip, OptLevel::O2),
    ));
    r.line(check(
        "QuiP#: O4 recovers from O3 via register fusion",
        get(&quip, OptLevel::O4) <= get(&quip, OptLevel::O3),
    ));
    let aqlm = ladder(&session, VqAlgorithm::Aqlm3, gemm);
    r.line(check(
        "AQLM: O2 register caching helps (15-30 hot entries)",
        get(&aqlm, OptLevel::O2) < get(&aqlm, OptLevel::O1),
    ));

    r.section("paper-shape checks (GeMV)");
    let gemv = ComputeOp::Gemv {
        n: 11008,
        k: 4096,
        batch: 1,
    };
    let aqlm_v = ladder(&session, VqAlgorithm::Aqlm3, gemv);
    r.line(check(
        "AQLM GeMV: O3 helps (small output, cheap reduction)",
        get(&aqlm_v, OptLevel::O3) < get(&aqlm_v, OptLevel::O2) * 1.02,
    ));
    let quip_v = ladder(&session, VqAlgorithm::QuipSharp4, gemv);
    r.line(check(
        "QuiP# GeMV: O4 does not shuffle (7 ≥ threshold → shared fusion)",
        (get(&quip_v, OptLevel::O4) - get(&quip_v, OptLevel::O3)).abs()
            / get(&quip_v, OptLevel::O3)
            < 0.05,
    ));
    r.finish();
}

fn check(what: &str, ok: bool) -> String {
    format!("[{}] {}", if ok { "MATCH" } else { "DEVIATION" }, what)
}
