//! Figure 10: GPU occupancy vs per-block resource consumption, and the
//! resource slack the codebook cache may consume for free.
//!
//! Two operator shapes (a GeMM-like 256-thread block and an
//! attention-like 128-thread block) are swept over shared memory and
//! registers; the most performant configuration (the paper's circle
//! marker) and the slack region are reported.

use vqllm_bench::Report;
use vqllm_core::cache::CacheBudget;
use vqllm_gpu::{BlockResources, GpuSpec, Occupancy};

fn main() {
    let mut r = Report::new("fig10", "Occupancy vs resources and slack (paper Fig. 10)");
    let gpu = GpuSpec::rtx4090();

    for (name, threads, regs, smem_data) in [
        (
            "OP A (GeMM-like, 256 thr)",
            256usize,
            64usize,
            32 * 1024usize,
        ),
        ("OP B (attention-like, 128 thr)", 128, 48, 16 * 1024),
    ] {
        r.section(name);
        r.line(format!(
            "{:>12} {:>10} {:>10}",
            "smem (KB)", "blocks/SM", "occupancy"
        ));
        for smem_kb in [0usize, 16, 32, 48, 64, 80, 96] {
            let occ = Occupancy::analyze(&gpu, &BlockResources::new(threads, regs, smem_kb * 1024));
            r.line(format!(
                "{:>12} {:>10} {:>9.0}%",
                smem_kb,
                occ.blocks_per_sm,
                occ.occupancy * 100.0
            ));
        }
        r.line(format!(
            "{:>12} {:>10} {:>10}",
            "regs/thread", "blocks/SM", "occupancy"
        ));
        for regs_t in [32usize, 64, 96, 128, 160, 192] {
            let occ = Occupancy::analyze(&gpu, &BlockResources::new(threads, regs_t, smem_data));
            r.line(format!(
                "{:>12} {:>10} {:>9.0}%",
                regs_t,
                occ.blocks_per_sm,
                occ.occupancy * 100.0
            ));
        }

        let base = BlockResources::new(threads, regs, smem_data);
        let strict = CacheBudget::from_occupancy(&gpu, &base);
        let perf = CacheBudget::performance_slack(&gpu, &base);
        r.line(format!(
            "slack at max occupancy:        {:>6} B smem, {:>4} B regs/thread",
            strict.smem_slack_bytes, strict.reg_slack_bytes_per_thread
        ));
        r.line(format!(
            "slack at performance point:    {:>6} B smem, {:>4} B regs/thread  (the blue region)",
            perf.smem_slack_bytes, perf.reg_slack_bytes_per_thread
        ));
    }
    r.blank();
    r.line("The performance-point slack is what the codebook cache divides by the");
    r.line("entry size to set n_reg / n_shared (paper §V-B Adaptivity).");
    r.finish();
}
