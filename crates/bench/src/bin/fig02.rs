//! Figure 2 (lower): VQ captures correlated distributions better than
//! element-wise quantization grids.
//!
//! The paper quantizes a correlated 2-D point cloud with outliers: the
//! element-wise Cartesian grid lands MSE 5.2e-3, VQ 3.2e-3. We reproduce
//! the experiment with a 16-entry VQ codebook (4 bits per 2-D point =
//! 2 bits/element) against a 2-bit-per-dimension scalar grid of the same
//! total budget.

use vqllm_bench::Report;
use vqllm_tensor::{metrics, synth};
use vqllm_vq::config::{CodebookScope, VqConfig};
use vqllm_vq::scalar::{self, ScalarQuantConfig};
use vqllm_vq::VqQuantizer;

fn main() {
    let mut r = Report::new(
        "fig02",
        "VQ vs element-wise quantization on correlated 2-D data (paper Fig. 2, lower)",
    );
    let points = synth::correlated_pairs(8192, 0.85, 0.02, 42);

    // Element-wise: 2 bits per dimension with one shared scale per
    // dimension → a 4×4 Cartesian grid over the plane. (Quantize the
    // transposed point cloud so each dimension is a single scale group.)
    let transposed = points.transposed();
    let ew = scalar::quantize(
        &transposed,
        ScalarQuantConfig {
            bits: 2,
            group_size: transposed.cols(),
            asymmetric: true,
        },
    )
    .expect("valid scalar config");
    let ew_mse = metrics::mse_tensor(&transposed, &ew.dequantize());

    // VQ: 16 entries over 2-D vectors → the same 4 bits per point.
    let cfg = VqConfig::new(2, 16, 1, CodebookScope::PerTensor).expect("valid config");
    let q = VqQuantizer::new(cfg)
        .quantize(&points, 7)
        .expect("quantize");
    let vq_mse = metrics::mse_tensor(&points, &q.dequantize().expect("dequantize"));

    r.line("points: 8192 correlated 2-D samples (ρ=0.85, 2% outliers)");
    r.line(format!("element-wise 2-bit grid   MSE = {ew_mse:.3e}"));
    r.line(format!("VQ<2,4,1> (16 entries)    MSE = {vq_mse:.3e}"));
    r.line(format!(
        "VQ / element-wise ratio   = {:.2}",
        vq_mse / ew_mse
    ));
    r.blank();
    r.line("Paper: element-wise 5.2e-3 vs VQ 3.2e-3 (ratio 0.62).");
    r.line(format!(
        "Reproduced shape: VQ wins by {:.0}% ({}).",
        (1.0 - vq_mse / ew_mse) * 100.0,
        if vq_mse < ew_mse { "MATCH" } else { "MISMATCH" }
    ));
    r.finish();
}
