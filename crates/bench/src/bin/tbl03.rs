//! Table III: reduce and codebook-switch axes of the fused computations.

use vqllm_bench::Report;
use vqllm_core::{AttnOperand, ComputeOp};
use vqllm_vq::VqAlgorithm;

fn main() {
    let mut r = Report::new("tbl03", "Reduce and codebook-switch axes (paper Tbl. III)");
    let gemm = ComputeOp::Gemm {
        m: 2048,
        n: 4096,
        k: 4096,
    };
    let attn = ComputeOp::attention_decode(32, 128, 1024, 1);

    r.section("Weight computations (GeMM / GeMV)");
    r.line(format!(
        "{:10} {:>16} {:>16} {:>18}",
        "Algorithm", "All axes", "Reduce axes", "Switch axes"
    ));
    for algo in VqAlgorithm::WEIGHT {
        let scope = algo.config().scope;
        r.line(format!(
            "{:10} {:>16} {:>16} {:>18} (global reduce on {:?})",
            algo.name(),
            format!("{:?}", gemm.all_axes()),
            format!("{:?}", gemm.reduce_axes(None)),
            format!("{:?}", gemm.switch_axes(scope)),
            gemm.global_reduce_axes(scope, None),
        ));
    }

    r.section("Attention (KV-cache computations)");
    for algo in VqAlgorithm::KV_CACHE {
        let scope = algo.config().scope;
        for (name, operand) in [
            ("K cache", AttnOperand::KCache),
            ("V cache", AttnOperand::VCache),
        ] {
            r.line(format!(
                "{:10} {:8} all {:?} reduce {:?} switch {:?} → global reduce on {:?}",
                algo.name(),
                name,
                attn.all_axes(),
                attn.reduce_axes(Some(operand)),
                attn.switch_axes(scope),
                attn.global_reduce_axes(scope, Some(operand)),
            ));
        }
    }
    r.blank();
    r.line("Matches the paper: AQLM/QuiP# switch on R, GPTVQ on M,N, CQ on H,C;");
    r.line("K-cache reduce (C) intersects the switch axes, V-cache reduce (T) does not.");
    r.finish();
}
