//! Table V: factors that influence the effect of each optimization.

use vqllm_bench::{fmt_bytes, Report};
use vqllm_core::engine::{baseline_tiling, kernel_codebook_bytes};
use vqllm_core::fusion::num_shuffles;
use vqllm_core::ComputeOp;
use vqllm_tensor::synth;
use vqllm_vq::stats::AccessHistogram;
use vqllm_vq::{VqAlgorithm, VqQuantizer};

fn main() {
    let mut r = Report::new(
        "tbl05",
        "Factors that influence the optimizations (paper Tbl. V)",
    );
    let gemm = ComputeOp::Gemm {
        m: 2048,
        n: 4096,
        k: 4096,
    };
    let gemv = ComputeOp::Gemv {
        n: 4096,
        k: 4096,
        batch: 1,
    };
    let attn = ComputeOp::attention_decode(32, 128, 1024, 1);

    r.line(format!(
        "{:10} {:>16} {:>14} {:>16} {:>12}",
        "Algorithm", "Codebook/block", "#Entry>µ+3σ", "Output/block", "#Shuffle"
    ));
    for algo in VqAlgorithm::ALL {
        let vq = algo.config();
        let op = if algo.is_weight_algorithm() {
            gemm
        } else {
            attn
        };
        let tiling = baseline_tiling(&op, &vq);
        let cb_per_block = tiling.books_per_block * kernel_codebook_bytes(&vq);

        // Measured hot-entry count: quantize a moderate synthetic tensor.
        let num_hot = measured_hot(algo);

        let out_desc = if algo.is_weight_algorithm() {
            let tg = baseline_tiling(&gemm, &vq).output_bytes_per_block;
            let tv = baseline_tiling(&gemv, &vq).output_bytes_per_block;
            format!(
                "{}/{}",
                fmt_bytes(tg as f64).trim(),
                fmt_bytes(tv as f64).trim()
            )
        } else {
            fmt_bytes(tiling.output_bytes_per_block as f64)
                .trim()
                .to_string()
        };

        let shuffles = if algo.is_weight_algorithm() {
            format!(
                "{}/{}",
                num_shuffles(vq.vector_size, gemm.required_layout()),
                num_shuffles(vq.vector_size, gemv.required_layout())
            )
        } else {
            format!("{}", num_shuffles(vq.vector_size, attn.required_layout()))
        };

        r.line(format!(
            "{:10} {:>16} {:>14} {:>16} {:>12}",
            algo.name(),
            fmt_bytes(cb_per_block as f64).trim().to_string(),
            num_hot,
            out_desc,
            shuffles,
        ));
    }
    r.blank();
    r.line("Paper values: codebook/block 2KB / 128KB / 32KB / 64KB;");
    r.line("hot entries 1-3 (QuiP#), 15-30 (AQLM), <1 (GPTVQ/CQ);");
    r.line("output 32KB GeMM, <1KB GeMV, 1-4KB attention; shuffles 3/7, 3/7, 1/3, 3.");
    r.finish();
}

/// Quantizes a moderate synthetic tensor with the algorithm and counts
/// entries above µ+3σ (averaged across residual rounds).
fn measured_hot(algo: VqAlgorithm) -> usize {
    let vq = algo.config();
    // Keep the tensor small enough for quick turnaround but big enough to
    // train the codebook (≥ stored entries of samples per scope).
    let (rows, cols) = if algo.is_weight_algorithm() {
        match algo {
            VqAlgorithm::Aqlm3 => (256, 512),
            _ => (128, 256),
        }
    } else {
        (512, 128)
    };
    let data = if algo.is_weight_algorithm() {
        synth::gaussian_with_outliers(rows, cols, 0.02, 0.01, 8.0, 42)
    } else {
        synth::kv_stream(rows, cols, 0.85, 42)
    };
    match VqQuantizer::new(vq).quantize(&data, 7) {
        Ok(q) => {
            let hot: usize = (0..vq.residuals)
                .map(|r| AccessHistogram::profile(&q, r).num_hot())
                .sum();
            hot / vq.residuals
        }
        Err(_) => 0,
    }
}
