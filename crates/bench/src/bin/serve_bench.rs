//! Serving-layer throughput report (`BENCH_serving.json`).
//!
//! Measures tokens/second of the batched request scheduler
//! (`Session::serve`, continuous batching at `max_batch = 8`) against
//! per-request looping (the same requests, the same kernels, but one
//! request in flight at a time — what a naive server would do), over a
//! shared pre-quantized context. The batched scheduler wins because one
//! K-decode, one V-panel decode, and one weight-panel decode serve the
//! whole batch instead of being re-paid per tenant.
//!
//! `--smoke` asserts the CI gate (exit code 1 otherwise):
//!
//! * batched serving ≥ 1.5× tokens/s over per-request looping at batch 8
//!
//! Both drivers run the identical scheduler machinery, so the measured
//! ratio isolates exactly what batch formation buys.

use std::time::Instant;
use vq_llm::tensor::synth;
use vq_llm::{DecodeRequest, ServeConfig, Session, SharedContext, VqAlgorithm};
use vqllm_bench::Report;

const SEQ: usize = 1024;
const HEAD_DIM: usize = 64;
const TENANTS: usize = 8;
const GEN_TOKENS: usize = 24;

fn requests() -> Vec<DecodeRequest> {
    (0..TENANTS)
        .map(|t| {
            let query: Vec<f32> = (0..HEAD_DIM)
                .map(|d| ((t * 13 + d) as f32 * 0.21).sin())
                .collect();
            // Ragged context positions: tenants sit at different depths of
            // the shared cache, like real continuous batching.
            DecodeRequest::new(t as u64, query, 640 + 40 * t, GEN_TOKENS)
        })
        .collect()
}

/// Tokens/second of one full drain, best of `reps` (best-of suppresses
/// shared-runner scheduling noise).
fn tokens_per_s(
    session: &Session,
    ctx: &SharedContext,
    max_batch: usize,
    reps: usize,
) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut tokens = 0u64;
    for _ in 0..reps.max(1) {
        let mut srv = session
            .serve(ctx.clone(), ServeConfig::new(max_batch, TENANTS))
            .expect("server");
        let handles: Vec<_> = requests()
            .into_iter()
            .map(|r| srv.submit(r).expect("admitted"))
            .collect();
        let t0 = Instant::now();
        srv.run_until_drained().expect("drain");
        best = best.min(t0.elapsed().as_secs_f64());
        tokens = srv.stats().decoded_tokens;
        assert!(handles.iter().all(|h| srv.output(h).is_some()));
    }
    (tokens as f64 / best, tokens)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let reps = 3;
    let mut report = Report::new(
        "serve_bench",
        "Batched request scheduling vs per-request looping",
    );

    let session = Session::builder()
        .cpu_threads(1)
        .weight_algo(VqAlgorithm::Gptvq2)
        .kv_algo(VqAlgorithm::Cq4)
        .build()
        .expect("session");
    let k = synth::kv_stream(SEQ, HEAD_DIM, 0.85, 21);
    let v = synth::kv_stream(SEQ, HEAD_DIM, 0.85, 22);
    let w = synth::correlated_channels(HEAD_DIM, HEAD_DIM, 4, 0.9, 23);
    let ctx = SharedContext::new(
        session.quantize_kv(&k, 1).expect("K"),
        session.quantize_kv(&v, 2).expect("V"),
        session.quantize_weights(&w, 3).expect("W"),
    )
    .expect("context");

    // Parity first: the measurement is meaningless if the schedulers
    // disagree. The batched drain and the per-request drain must produce
    // identical bytes for every tenant (the scheduler's bitwise contract).
    {
        let mut batched = session
            .serve(ctx.clone(), ServeConfig::new(TENANTS, TENANTS))
            .expect("server");
        let mut looped = session
            .serve(ctx.clone(), ServeConfig::new(1, TENANTS))
            .expect("server");
        let hb: Vec<_> = requests()
            .into_iter()
            .map(|r| batched.submit(r).expect("admitted"))
            .collect();
        let hl: Vec<_> = requests()
            .into_iter()
            .map(|r| looped.submit(r).expect("admitted"))
            .collect();
        batched.run_until_drained().expect("drain");
        looped.run_until_drained().expect("drain");
        for (b, l) in hb.iter().zip(&hl) {
            let ob = batched.output(b).expect("output");
            let ol = looped.output(l).expect("output");
            assert_eq!(
                ob.steps, ol.steps,
                "batched scheduling changed decode bytes (tenant {})",
                ob.tenant
            );
        }
    }

    let (looped_tps, tokens) = tokens_per_s(&session, &ctx, 1, reps);
    let (batched_tps, _) = tokens_per_s(&session, &ctx, TENANTS, reps);
    let speedup = batched_tps / looped_tps;

    report.section(&format!(
        "{TENANTS} tenants x {GEN_TOKENS} tokens over a shared {SEQ}x{HEAD_DIM} CQ-4 context \
         (ragged positions, GPTVQ-2 projection, simd tier {})",
        vq_llm::kernels::host_exec::simd::tier()
    ));
    report.line(format!(
        "  per-request looping (max_batch 1): {looped_tps:9.0} tok/s"
    ));
    report.line(format!(
        "  batched scheduler   (max_batch {TENANTS}): {batched_tps:9.0} tok/s"
    ));
    report.line(format!(
        "  speedup {speedup:.2}x over {tokens} decoded tokens (shared K/V/W decode amortized \
         across the batch)"
    ));

    let threads = std::thread::available_parallelism().map_or(1, usize::from);
    let json = format!(
        "{{\n  \"seq\": {SEQ},\n  \"head_dim\": {HEAD_DIM},\n  \"tenants\": {TENANTS},\n  \
         \"gen_tokens\": {GEN_TOKENS},\n  \"tokens\": {tokens},\n  \
         \"looped_tok_per_s\": {looped_tps:.1},\n  \"batched_tok_per_s\": {batched_tps:.1},\n  \
         \"batched_speedup\": {speedup:.3},\n  \"available_threads\": {threads},\n  \
         \"simd_tier\": \"{}\"\n}}\n",
        vq_llm::kernels::host_exec::simd::tier()
    );
    let mut json_path = vqllm_bench::results_dir();
    json_path.pop();
    json_path.push("BENCH_serving.json");
    std::fs::write(&json_path, &json).expect("write BENCH_serving.json");
    report.section("BENCH_serving.json");
    report.line(json.trim_end());
    report.finish();

    // --- The acceptance gate (asserted in --smoke / CI) ---
    let gate = 1.5;
    if speedup >= gate {
        println!("OK: batched serving speedup {speedup:.2} (>= {gate:.2} required)");
    } else {
        eprintln!("FAIL: batched serving speedup {speedup:.2} < required {gate:.2}");
        if smoke {
            std::process::exit(1);
        }
    }
}
