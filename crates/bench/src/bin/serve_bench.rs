//! Serving-layer throughput report (`BENCH_serving.json`).
//!
//! Two scenarios, both parity-asserted before timing anything:
//!
//! 1. **Single context** — tokens/second of the batched request scheduler
//!    (`Session::serve`, continuous batching at `max_batch = 8`) against
//!    per-request looping (the same requests, the same kernels, but one
//!    request in flight at a time — what a naive server would do), over a
//!    shared pre-quantized context. The batched scheduler wins because
//!    one K-decode, one V-panel decode, and one weight-panel decode serve
//!    the whole batch instead of being re-paid per tenant.
//! 2. **Mixed two-context** — the same comparison on `vq_llm::Engine`
//!    with traffic split over **two** registered contexts of different
//!    shapes: every step re-forms the batch per context group, so the
//!    shared decodes are amortized per group while slots and the queue
//!    stay engine-wide.
//!
//! A third scenario drains the same tenants with **live KV
//! quantization** on (`KvQuantMode::Quantized`): every generated token is
//! appended to a private, VQ-compressed KV extension (short f32 tail,
//! per-group outlier channel) and attention runs directly on the packed
//! codes. Its gate is memory, not speed: compressed bytes per appended
//! token must stay ≤ 0.5× the f32 cost, while the throughput gates above
//! keep running with live KV off, unchanged.
//!
//! `--smoke` asserts the CI gates (exit code 1 otherwise):
//!
//! * batched serving ≥ 1.5× tokens/s over per-request looping at batch 8
//! * the mixed two-context engine drain ≥ 1.5× tokens/s over per-request
//!   looping on the same engine machinery
//! * step-latency tail at batch 8 with an oversubscribed queue: p99 ≤
//!   10× p50 (per-step wall times and queue depths also land in
//!   `BENCH_serving.json` as `step_latency_p50_us`/`step_latency_p99_us`/
//!   `queue_depth_*`)
//! * live-KV memory: compressed bytes per appended token ≤ 0.5× the f32
//!   baseline (`2 × head_dim × 4` bytes), reported alongside the fold
//!   NMSE and its projected task accuracy
//!
//! Both drivers of each scenario run the identical scheduler machinery,
//! so the measured ratios isolate exactly what batch formation buys.

use std::time::Instant;
use vq_llm::llm::accuracy::project_kv_accuracy;
use vq_llm::net::percentile;
use vq_llm::tensor::synth;
use vq_llm::{
    ContextHandle, DecodeRequest, Engine, KvQuantMode, ProfileConfig, ServeConfig, Session,
    SharedContext, VqAlgorithm,
};
use vqllm_bench::Report;

const SEQ: usize = 1024;
const HEAD_DIM: usize = 64;
const TENANTS: usize = 8;
const GEN_TOKENS: usize = 24;

// The second context of the mixed scenario (a different geometry, like a
// second shared prompt served by the same engine).
const SEQ_B: usize = 768;
const HEAD_DIM_B: usize = 32;

fn requests_from(base: usize) -> Vec<DecodeRequest> {
    (base..base + TENANTS)
        .map(|t| {
            let query: Vec<f32> = (0..HEAD_DIM)
                .map(|d| ((t * 13 + d) as f32 * 0.21).sin())
                .collect();
            // Ragged context positions: tenants sit at different depths of
            // the shared cache, like real continuous batching.
            DecodeRequest::new(t as u64, query, 640 + 40 * (t % TENANTS), GEN_TOKENS)
        })
        .collect()
}

fn requests() -> Vec<DecodeRequest> {
    requests_from(0)
}

/// The mixed scenario's traffic: tenants alternate between the two
/// contexts, ragged positions in both.
fn mixed_requests() -> Vec<(bool, DecodeRequest)> {
    (0..TENANTS)
        .map(|t| {
            let to_b = t % 2 == 1;
            let (dim, base, stride) = if to_b {
                (HEAD_DIM_B, 400, 30)
            } else {
                (HEAD_DIM, 640, 40)
            };
            let query: Vec<f32> = (0..dim)
                .map(|d| ((t * 17 + d) as f32 * 0.23).sin())
                .collect();
            (
                to_b,
                DecodeRequest::new(t as u64, query, base + stride * t, GEN_TOKENS),
            )
        })
        .collect()
}

fn quantize_context(session: &Session, seq: usize, dim: usize, seed: u64) -> SharedContext {
    let k = synth::kv_stream(seq, dim, 0.85, seed);
    let v = synth::kv_stream(seq, dim, 0.85, seed + 1);
    // Gain the projection so the decode loop is RMS-preserving: softmax
    // averaging over hundreds of context rows shrinks the attention
    // output far below the KV stream's row norm (real transformers undo
    // that with norms + residual streams), and without the gain the
    // live-KV scenario would be appending near-zero rows that no
    // codebook trained on the context distribution can represent. The
    // factor is calibrated so decoded rows match the context rows' RMS;
    // the throughput/parity scenarios are scale-invariant either way.
    let mut w = synth::correlated_channels(dim, dim, 4, 0.9, seed + 2);
    w.map_inplace(|x| x * 25.0);
    SharedContext::new(
        session.quantize_kv(&k, seed).expect("K"),
        session.quantize_kv(&v, seed + 1).expect("V"),
        session.quantize_weights(&w, seed + 2).expect("W"),
    )
    .expect("context")
}

/// Tokens/second of one full drain, best of `reps` (best-of suppresses
/// shared-runner scheduling noise).
fn tokens_per_s(
    session: &Session,
    ctx: &SharedContext,
    max_batch: usize,
    reps: usize,
) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut tokens = 0u64;
    for _ in 0..reps.max(1) {
        let mut srv = session
            .serve(ctx.clone(), ServeConfig::new(max_batch, TENANTS))
            .expect("server");
        let handles: Vec<_> = requests()
            .into_iter()
            .map(|r| srv.submit(r).expect("admitted"))
            .collect();
        let t0 = Instant::now();
        srv.run_until_drained().expect("drain");
        best = best.min(t0.elapsed().as_secs_f64());
        tokens = srv.stats().decoded_tokens;
        assert!(handles.iter().all(|h| srv.output(h).is_some()));
    }
    (tokens as f64 / best, tokens)
}

/// Per-step wall time (µs) and observed queue depth of one oversubscribed
/// drain at `max_batch`: twice the slots' worth of tenants are submitted
/// up front, so the queue stays non-empty until the back half admits and
/// every step decodes a full batch — the shape the tail-latency gate is
/// about.
fn step_profile(session: &Session, ctx: &SharedContext, max_batch: usize) -> (Vec<f64>, Vec<f64>) {
    let mut srv = session
        .serve(ctx.clone(), ServeConfig::new(max_batch, 2 * TENANTS))
        .expect("server");
    for r in requests_from(0).into_iter().chain(requests_from(TENANTS)) {
        srv.submit(r).expect("admitted");
    }
    let mut latencies_us = Vec::new();
    let mut queue_depths = Vec::new();
    while !srv.is_idle() {
        let t0 = Instant::now();
        let r = srv.step().expect("step");
        latencies_us.push(t0.elapsed().as_secs_f64() * 1e6);
        queue_depths.push(r.queued as f64);
    }
    (latencies_us, queue_depths)
}

/// A fresh engine over both mixed-scenario contexts.
fn mixed_engine(
    session: &Session,
    ctx_a: &SharedContext,
    ctx_b: &SharedContext,
    max_batch: usize,
) -> (Engine, ContextHandle, ContextHandle) {
    let mut engine = Engine::builder()
        .backend(std::sync::Arc::clone(session.backend()))
        .weight_algo(VqAlgorithm::Gptvq2)
        .kv_algo(VqAlgorithm::Cq4)
        .serve_config(ServeConfig::new(max_batch, TENANTS))
        // Measured registration profiles but no mid-drain replan churn in
        // the timed loop (replans are byte-invisible; still, keep the two
        // drivers structurally identical).
        .profile_config(ProfileConfig::disabled())
        .build()
        .expect("engine");
    let ha = engine.register_context(ctx_a.clone()).expect("register A");
    let hb = engine.register_context(ctx_b.clone()).expect("register B");
    (engine, ha, hb)
}

/// Tokens/second of one mixed two-context engine drain, best of `reps`.
fn mixed_tokens_per_s(
    session: &Session,
    ctx_a: &SharedContext,
    ctx_b: &SharedContext,
    max_batch: usize,
    reps: usize,
) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut tokens = 0u64;
    for _ in 0..reps.max(1) {
        let (mut engine, ha, hb) = mixed_engine(session, ctx_a, ctx_b, max_batch);
        let handles: Vec<_> = mixed_requests()
            .into_iter()
            .map(|(to_b, r)| engine.submit(if to_b { hb } else { ha }, r))
            .collect();
        let t0 = Instant::now();
        engine.run_until_drained().expect("drain");
        best = best.min(t0.elapsed().as_secs_f64());
        tokens = engine.stats().decoded_tokens;
        assert!(handles.iter().all(|h| engine.output(h).is_some()));
    }
    (tokens as f64 / best, tokens)
}

/// One full drain with live KV quantization on: compressed bytes per
/// appended token, the engine-wide fold NMSE, and throughput for context.
struct LiveKvRun {
    tok_per_s: f64,
    tokens: u64,
    bytes_per_token: f64,
    folded_tokens: u64,
    outlier_groups: u64,
    nmse: f64,
}

fn live_kv_run(session: &Session, ctx: &SharedContext, mode: KvQuantMode) -> LiveKvRun {
    let mut engine = Engine::builder()
        .backend(std::sync::Arc::clone(session.backend()))
        .weight_algo(VqAlgorithm::Gptvq2)
        .kv_algo(VqAlgorithm::Cq4)
        .serve_config(ServeConfig::new(TENANTS, TENANTS).with_kv_quant(mode))
        .profile_config(ProfileConfig::disabled())
        .build()
        .expect("engine");
    let h = engine.register_context(ctx.clone()).expect("register");
    let handles: Vec<_> = requests()
        .into_iter()
        .map(|r| engine.submit(h, r))
        .collect();
    let t0 = Instant::now();
    engine.run_until_drained().expect("drain");
    let elapsed = t0.elapsed().as_secs_f64();
    let tokens = engine.stats().decoded_tokens;
    let mut kv_bytes = 0usize;
    let mut appended = 0usize;
    for h in &handles {
        let out = engine.output(h).expect("output");
        kv_bytes += out.kv_bytes;
        // The final token of each request is returned, not appended.
        appended += out.steps.len().saturating_sub(1);
    }
    let stats = engine.stats();
    LiveKvRun {
        tok_per_s: tokens as f64 / elapsed,
        tokens,
        bytes_per_token: kv_bytes as f64 / appended.max(1) as f64,
        folded_tokens: stats.kv_folded_tokens,
        outlier_groups: stats.kv_outlier_groups,
        nmse: stats.kv_nmse(),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let reps = 3;
    let mut report = Report::new(
        "serve_bench",
        "Batched request scheduling vs per-request looping",
    );

    let session = Session::builder()
        .cpu_threads(1)
        .weight_algo(VqAlgorithm::Gptvq2)
        .kv_algo(VqAlgorithm::Cq4)
        .build()
        .expect("session");
    let ctx = quantize_context(&session, SEQ, HEAD_DIM, 21);
    let ctx_b = quantize_context(&session, SEQ_B, HEAD_DIM_B, 31);

    // Parity first: the measurement is meaningless if the schedulers
    // disagree. The batched drain and the per-request drain must produce
    // identical bytes for every tenant (the scheduler's bitwise contract).
    {
        let mut batched = session
            .serve(ctx.clone(), ServeConfig::new(TENANTS, TENANTS))
            .expect("server");
        let mut looped = session
            .serve(ctx.clone(), ServeConfig::new(1, TENANTS))
            .expect("server");
        let hb: Vec<_> = requests()
            .into_iter()
            .map(|r| batched.submit(r).expect("admitted"))
            .collect();
        let hl: Vec<_> = requests()
            .into_iter()
            .map(|r| looped.submit(r).expect("admitted"))
            .collect();
        batched.run_until_drained().expect("drain");
        looped.run_until_drained().expect("drain");
        for (b, l) in hb.iter().zip(&hl) {
            let ob = batched.output(b).expect("output");
            let ol = looped.output(l).expect("output");
            assert_eq!(
                ob.steps, ol.steps,
                "batched scheduling changed decode bytes (tenant {})",
                ob.tenant
            );
        }
    }

    // Mixed-context parity: a full-width engine drain vs the same engine
    // machinery at max_batch = 1.
    {
        let (mut batched, ba, bb) = mixed_engine(&session, &ctx, &ctx_b, TENANTS);
        let (mut looped, la, lb) = mixed_engine(&session, &ctx, &ctx_b, 1);
        let hb: Vec<_> = mixed_requests()
            .into_iter()
            .map(|(to_b, r)| batched.submit(if to_b { bb } else { ba }, r))
            .collect();
        let hl: Vec<_> = mixed_requests()
            .into_iter()
            .map(|(to_b, r)| looped.submit(if to_b { lb } else { la }, r))
            .collect();
        let reports = batched.run_until_drained().expect("drain");
        assert!(
            reports.iter().any(|r| r.groups == 2),
            "mixed drain never formed a two-context batch"
        );
        looped.run_until_drained().expect("drain");
        for (b, l) in hb.iter().zip(&hl) {
            let ob = batched.output(b).expect("output");
            let ol = looped.output(l).expect("output");
            assert_eq!(
                ob.steps, ol.steps,
                "mixed-context scheduling changed decode bytes (tenant {})",
                ob.tenant
            );
        }
    }

    let (looped_tps, tokens) = tokens_per_s(&session, &ctx, 1, reps);
    let (batched_tps, _) = tokens_per_s(&session, &ctx, TENANTS, reps);
    let speedup = batched_tps / looped_tps;

    let (mixed_looped_tps, mixed_tokens) = mixed_tokens_per_s(&session, &ctx, &ctx_b, 1, reps);
    let (mixed_batched_tps, _) = mixed_tokens_per_s(&session, &ctx, &ctx_b, TENANTS, reps);
    let mixed_speedup = mixed_batched_tps / mixed_looped_tps;

    // Live-KV memory: the same tenants, but every generated token lands
    // in a compressed private extension (2-row f32 tail, outliers kept
    // only when quantization leaves MORE energy than the original group
    // — at CQ-4's 2-wide vectors an outlier costs 16 bytes against 8
    // bytes of raw f32, so the channel only pays at a low fire rate).
    let live = live_kv_run(
        &session,
        &ctx,
        KvQuantMode::Quantized {
            tail_window: 2,
            outlier_keep_milli: 1000,
        },
    );
    let kv_fp32_bytes_per_token = (2 * HEAD_DIM * 4) as f64;
    let kv_ratio = live.bytes_per_token / kv_fp32_bytes_per_token;
    let kv_accuracy = project_kv_accuracy(live.nmse);

    // Tail-latency profile at the CI-gated batch width: a fat head of
    // steps with the queue full and the batch at max width is where
    // stragglers would show, and the gate (p99 <= 10x p50) bounds them.
    let (step_us, queue_depths) = step_profile(&session, &ctx, TENANTS);
    let step_p50_us = percentile(&step_us, 0.50);
    let step_p99_us = percentile(&step_us, 0.99);
    let step_mean_us = step_us.iter().sum::<f64>() / step_us.len() as f64;
    let step_max_us = step_us.iter().fold(0.0f64, |a, &b| a.max(b));
    let queue_depth_mean = queue_depths.iter().sum::<f64>() / queue_depths.len() as f64;
    let queue_depth_max = queue_depths.iter().fold(0.0f64, |a, &b| a.max(b));

    report.section(&format!(
        "{TENANTS} tenants x {GEN_TOKENS} tokens over a shared {SEQ}x{HEAD_DIM} CQ-4 context \
         (ragged positions, GPTVQ-2 projection, simd tier {})",
        vq_llm::kernels::host_exec::simd::tier()
    ));
    report.line(format!(
        "  per-request looping (max_batch 1): {looped_tps:9.0} tok/s"
    ));
    report.line(format!(
        "  batched scheduler   (max_batch {TENANTS}): {batched_tps:9.0} tok/s"
    ));
    report.line(format!(
        "  speedup {speedup:.2}x over {tokens} decoded tokens (shared K/V/W decode amortized \
         across the batch)"
    ));

    report.section(&format!(
        "mixed engine: {TENANTS} tenants split over {SEQ}x{HEAD_DIM} + {SEQ_B}x{HEAD_DIM_B} \
         contexts (per-context batch groups, engine-wide slots)"
    ));
    report.line(format!(
        "  per-request looping  (max_batch 1): {mixed_looped_tps:9.0} tok/s"
    ));
    report.line(format!(
        "  mixed-context engine (max_batch {TENANTS}): {mixed_batched_tps:9.0} tok/s"
    ));
    report.line(format!(
        "  speedup {mixed_speedup:.2}x over {mixed_tokens} decoded tokens"
    ));

    report.section(&format!(
        "live KV quantization: {TENANTS} tenants x {GEN_TOKENS} tokens, CQ-4 codes + \
         2-row f32 tail + outlier channel"
    ));
    report.line(format!(
        "  {:7.1} compressed bytes/token vs {kv_fp32_bytes_per_token:.0} f32 \
         (ratio {kv_ratio:.3}, {} folded tokens, {} outlier groups)",
        live.bytes_per_token, live.folded_tokens, live.outlier_groups
    ));
    report.line(format!(
        "  fold nmse {:.3e} -> projected accuracy {kv_accuracy:.4} \
         ({:9.0} tok/s over {} decoded tokens)",
        live.nmse, live.tok_per_s, live.tokens
    ));

    report.section(&format!(
        "step latency at max_batch {TENANTS} ({} steps, 2x oversubscribed queue)",
        step_us.len()
    ));
    report.line(format!(
        "  p50 {step_p50_us:7.0} us   p99 {step_p99_us:7.0} us   mean {step_mean_us:7.0} us   \
         max {step_max_us:7.0} us"
    ));
    report.line(format!(
        "  queue depth mean {queue_depth_mean:.1}, max {queue_depth_max:.0}"
    ));

    let threads = std::thread::available_parallelism().map_or(1, usize::from);
    let json = format!(
        "{{\n  \"seq\": {SEQ},\n  \"head_dim\": {HEAD_DIM},\n  \"tenants\": {TENANTS},\n  \
         \"gen_tokens\": {GEN_TOKENS},\n  \"tokens\": {tokens},\n  \
         \"looped_tok_per_s\": {looped_tps:.1},\n  \"batched_tok_per_s\": {batched_tps:.1},\n  \
         \"batched_speedup\": {speedup:.3},\n  \
         \"mixed_seq_b\": {SEQ_B},\n  \"mixed_head_dim_b\": {HEAD_DIM_B},\n  \
         \"mixed_tokens\": {mixed_tokens},\n  \
         \"mixed_looped_tok_per_s\": {mixed_looped_tps:.1},\n  \
         \"mixed_batched_tok_per_s\": {mixed_batched_tps:.1},\n  \
         \"mixed_speedup\": {mixed_speedup:.3},\n  \
         \"kv_bytes_per_token\": {:.1},\n  \
         \"kv_fp32_bytes_per_token\": {kv_fp32_bytes_per_token:.0},\n  \
         \"kv_ratio\": {kv_ratio:.4},\n  \
         \"kv_nmse\": {:.6e},\n  \
         \"kv_accuracy\": {kv_accuracy:.4},\n  \
         \"kv_folded_tokens\": {},\n  \
         \"kv_outlier_groups\": {},\n  \
         \"kv_live_tok_per_s\": {:.1},\n  \
         \"step_latency_p50_us\": {step_p50_us:.1},\n  \
         \"step_latency_p99_us\": {step_p99_us:.1},\n  \
         \"step_latency_mean_us\": {step_mean_us:.1},\n  \
         \"step_latency_max_us\": {step_max_us:.1},\n  \
         \"queue_depth_mean\": {queue_depth_mean:.2},\n  \
         \"queue_depth_max\": {queue_depth_max:.0},\n  \
         \"available_threads\": {threads},\n  \
         \"simd_tier\": \"{}\"\n}}\n",
        live.bytes_per_token,
        live.nmse,
        live.folded_tokens,
        live.outlier_groups,
        live.tok_per_s,
        vq_llm::kernels::host_exec::simd::tier()
    );
    let mut json_path = vqllm_bench::results_dir();
    json_path.pop();
    json_path.push("BENCH_serving.json");
    std::fs::write(&json_path, &json).expect("write BENCH_serving.json");
    report.section("BENCH_serving.json");
    report.line(json.trim_end());
    report.finish();

    // --- The acceptance gates (asserted in --smoke / CI) ---
    let gate = 1.5;
    let mut failed = false;
    if speedup >= gate {
        println!("OK: batched serving speedup {speedup:.2} (>= {gate:.2} required)");
    } else {
        eprintln!("FAIL: batched serving speedup {speedup:.2} < required {gate:.2}");
        failed = true;
    }
    if mixed_speedup >= gate {
        println!("OK: mixed two-context speedup {mixed_speedup:.2} (>= {gate:.2} required)");
    } else {
        eprintln!("FAIL: mixed two-context speedup {mixed_speedup:.2} < required {gate:.2}");
        failed = true;
    }
    // Tail-latency gate: with 8 homogeneous tenants at full batch, a p99
    // beyond 10x the median means some steps stall (lock contention,
    // allocator churn, batch re-formation doing O(queue) work) — the
    // serving layer's latency contract, not just its throughput.
    let tail_gate = 10.0;
    if step_p99_us <= tail_gate * step_p50_us {
        println!(
            "OK: step latency p99 {step_p99_us:.0} us <= {tail_gate:.0}x p50 \
             {step_p50_us:.0} us at batch {TENANTS}"
        );
    } else {
        eprintln!(
            "FAIL: step latency p99 {step_p99_us:.0} us > {tail_gate:.0}x p50 \
             {step_p50_us:.0} us at batch {TENANTS}"
        );
        failed = true;
    }
    // Live-KV memory gate: the whole point of quantizing the live cache
    // is bytes, so the compressed cost per appended token (codes +
    // outliers + the unfolded f32 tail, amortized over the drain) must
    // stay at or under half the f32 cost.
    let kv_gate = 0.5;
    if kv_ratio <= kv_gate {
        println!(
            "OK: live-KV bytes/token {:.1} = {kv_ratio:.3}x f32 (<= {kv_gate:.2} required)",
            live.bytes_per_token
        );
    } else {
        eprintln!(
            "FAIL: live-KV bytes/token {:.1} = {kv_ratio:.3}x f32 > required {kv_gate:.2}",
            live.bytes_per_token
        );
        failed = true;
    }
    if failed && smoke {
        std::process::exit(1);
    }
}
