//! Figure 13: overall latency reduction of the best-performing version
//! against the unoptimized (GC) version, across VQ configurations,
//! kernels, and model scales.
//!
//! Workloads follow Llama-7B and Llama-65B shapes: GeMM, GeMV at batch
//! 1/16 (weight algorithms), attention decode at seq 1k/4k × batch 1/8
//! (CQ-2), on the RTX 4090, planned through one `Session`.

use vq_llm::{ComputeOp, GpuSpec, OptLevel, Session, VqAlgorithm};
use vqllm_bench::{fmt_us, Report};

fn reduction(s: &Session, algo: VqAlgorithm, op: ComputeOp) -> (f64, f64, f64) {
    let vq = algo.config();
    let gc_plan = s.plan_at(&vq, &op, OptLevel::Gc).expect("GC plan");
    let gc = s.estimate(&gc_plan).us();
    let (_, best) = s.best_plan(&vq, &op).expect("best plan");
    (gc, best.us(), (1.0 - best.us() / gc) * 100.0)
}

fn main() {
    let mut r = Report::new(
        "fig13",
        "Overall latency reduction vs unoptimized GC (paper Fig. 13)",
    );
    let session = Session::builder()
        .gpu(GpuSpec::rtx4090())
        .build()
        .expect("valid session");
    let mut reductions = Vec::new();

    for (model, hidden, inter, heads) in [
        ("Llama-7B", 4096usize, 11008usize, 32usize),
        ("Llama-65B", 8192, 22016, 64),
    ] {
        r.section(model);
        for algo in VqAlgorithm::WEIGHT {
            for (name, op) in [
                (
                    "GeMM",
                    ComputeOp::Gemm {
                        m: 2048,
                        n: inter,
                        k: hidden,
                    },
                ),
                (
                    "GeMV BS1",
                    ComputeOp::Gemv {
                        n: inter,
                        k: hidden,
                        batch: 1,
                    },
                ),
                (
                    "GeMV BS16",
                    ComputeOp::Gemv {
                        n: inter,
                        k: hidden,
                        batch: 16,
                    },
                ),
            ] {
                let (gc, best, red) = reduction(&session, algo, op);
                reductions.push(red);
                r.line(format!(
                    "{:9} {:10} GC {} → best {}  reduction {red:5.1}%",
                    name,
                    algo.name(),
                    fmt_us(gc),
                    fmt_us(best)
                ));
            }
        }
        for seq in [1024usize, 4096] {
            for batch in [1usize, 8] {
                let op = ComputeOp::attention_decode(heads, 128, seq, batch);
                let (gc, best, red) = reduction(&session, VqAlgorithm::Cq2, op);
                reductions.push(red);
                r.line(format!(
                    "Attn {}k BS{batch} CQ-2     GC {} → best {}  reduction {red:5.1}%",
                    seq / 1024,
                    fmt_us(gc),
                    fmt_us(best)
                ));
            }
        }
    }

    let mean = reductions.iter().sum::<f64>() / reductions.len() as f64;
    let max = reductions.iter().cloned().fold(f64::MIN, f64::max);
    r.section("summary");
    r.line(format!(
        "mean latency reduction {mean:.2}% (paper: 46.13%), max {max:.2}% (paper: 53.73%+)"
    ));
    r.line(format!(
        "[{}] every optimized kernel beats its GC baseline",
        if reductions.iter().all(|&x| x > 0.0) {
            "MATCH"
        } else {
            "DEVIATION"
        }
    ));
    r.line(format!(
        "[{}] mean reduction in a paper-compatible 35-70% band",
        if (35.0..=70.0).contains(&mean) {
            "MATCH"
        } else {
            "DEVIATION"
        }
    ));
    r.line("Note: our attention reductions (79-90%) sit above the paper's mean");
    r.line("because the simulated optimized kernels run closer to the bandwidth");
    r.line("bound than the authors' measured CUDA kernels (see EXPERIMENTS.md).");
    r.finish();
}
