//! Figure 17: end-to-end speedup over FP16 (left) and arc-challenge
//! accuracy proxy (right).
//!
//! Llama-7B, batch 16, prompt 1024, 256 generated tokens; RTX 4090 plus
//! the bandwidth-constrained Tesla A40 for the 4-bit configuration. All
//! pipelines run through one `Session` per device, so every decode-step
//! kernel is planned once and served from the session's plan cache.

use vq_llm::{GpuSpec, QuantScheme, Session};
use vqllm_bench::Report;
use vqllm_llm::AccuracyProxy;

fn main() {
    let mut r = Report::new(
        "fig17",
        "End-to-end speedup and accuracy proxy (paper Fig. 17)",
    );
    let session = Session::builder()
        .gpu(GpuSpec::rtx4090())
        .build()
        .expect("valid session");
    let schemes = [
        QuantScheme::Fp16,
        QuantScheme::QServe4,
        QuantScheme::vq_llm_4bit(),
        QuantScheme::vq_llm_2bit(),
    ];

    r.section("(left) E2E latency and speedup, RTX 4090");
    let base = session.pipeline(QuantScheme::Fp16).generate(1024, 256, 16);
    let mut speedup_4bit = 0.0;
    for scheme in schemes {
        let rep = session.pipeline(scheme).generate(1024, 256, 16);
        let speedup = base.total_ms() / rep.total_ms();
        if scheme == QuantScheme::vq_llm_4bit() {
            speedup_4bit = speedup;
        }
        r.line(format!(
            "{:26} prefill {:7.1} ms + decode {:7.1} ms = {:8.1} ms  speedup {speedup:4.2}x  mem {:5.2} GB",
            rep.scheme,
            rep.prefill_ms,
            rep.decode_ms,
            rep.total_ms(),
            rep.memory_gb
        ));
    }

    r.section("(left, cont.) VQ-LLM 4-bit on the Tesla A40");
    let a40 = Session::builder()
        .gpu(GpuSpec::a40())
        .build()
        .expect("valid session");
    let a40_base = a40.pipeline(QuantScheme::Fp16).generate(1024, 256, 16);
    let a40_vq = a40
        .pipeline(QuantScheme::vq_llm_4bit())
        .generate(1024, 256, 16);
    let a40_speedup = a40_base.total_ms() / a40_vq.total_ms();
    r.line(format!(
        "A40: FP16 {:8.1} ms vs VQ-LLM-4 {:8.1} ms → speedup {a40_speedup:4.2}x",
        a40_base.total_ms(),
        a40_vq.total_ms()
    ));
    r.line(format!(
        "(paper reports a *greater* A40 speedup; our model lands at {:.0}% of the",
        a40_speedup / speedup_4bit * 100.0
    ));
    r.line(" 4090's — a documented deviation, see EXPERIMENTS.md)");

    r.section("(right) arc-challenge accuracy proxy");
    let proxy = AccuracyProxy::default();
    for scheme in [
        QuantScheme::Fp16,
        QuantScheme::QServe4,
        QuantScheme::vq_llm_4bit(),
    ] {
        let acc = proxy.evaluate(&scheme);
        r.line(format!(
            "{:26} weight nMSE {:8.4}  kv nMSE {:8.4}  accuracy {:5.2}%",
            scheme.name(),
            acc.weight_nmse,
            acc.kv_nmse,
            acc.accuracy * 100.0
        ));
    }

    r.section("paper-shape checks");
    let qserve = session
        .pipeline(QuantScheme::QServe4)
        .generate(1024, 256, 16);
    let v4 = session
        .pipeline(QuantScheme::vq_llm_4bit())
        .generate(1024, 256, 16);
    let v2 = session
        .pipeline(QuantScheme::vq_llm_2bit())
        .generate(1024, 256, 16);
    r.line(check(
        "VQ-LLM-4 ≈ qServe-4 (within 25%), both ≈ 2.2x over FP16",
        (v4.total_ms() / qserve.total_ms() - 1.0).abs() < 0.25 && speedup_4bit > 1.7,
    ));
    r.line(check("2-bit beats 4-bit", v2.total_ms() < v4.total_ms()));
    r.line(check(
        "FP16 > 20 GB, 4-bit schemes < 6.5 GB",
        base.memory_gb > 20.0 && v4.memory_gb < 6.5 && qserve.memory_gb < 6.5,
    ));
    let acc_vq = proxy.evaluate(&QuantScheme::vq_llm_4bit()).accuracy;
    let acc_qs = proxy.evaluate(&QuantScheme::QServe4).accuracy;
    r.line(check(
        "VQ-LLM-4 accuracy above qServe-4 (paper: +2.5%)",
        acc_vq > acc_qs,
    ));

    let stats = session.cache_stats();
    r.section("plan cache");
    r.line(format!(
        "4090 session: {} plans for {} lookups ({:.0}% hit rate — every repeated \
         decode-step op served from cache)",
        session.plan_cache().len(),
        stats.hits + stats.misses,
        stats.hit_rate() * 100.0
    ));
    r.finish();
}

fn check(what: &str, ok: bool) -> String {
    format!("[{}] {}", if ok { "MATCH" } else { "DEVIATION" }, what)
}
