//! Sensitivity / ablation studies (paper §VII: "extensive sensitivity to
//! verify the effectiveness of each technique").
//!
//! Four sweeps, each isolating one adaptive heuristic:
//!
//! 1. **Split factor** — total dataflow traffic vs split, showing the
//!    `sqrt(cb/output)` optimum the mean-value-theorem argument predicts.
//! 2. **Shared boundary (`n_shared`)** — attention latency vs how much of
//!    each codebook is cached, showing the slack-point sweet spot between
//!    cold-miss traffic and occupancy loss.
//! 3. **Register boundary (`n_reg`)** — bank-conflict cycles vs hot-entry
//!    register caching, isolating O2's mechanism.
//! 4. **Shuffle threshold** — register vs shared fusion cost as the
//!    vector-size/layout ratio grows, validating the threshold of 5.

use vqllm_bench::{fmt_bytes, fmt_us, Report};
use vqllm_core::dataflow::optimal_split_factor;
use vqllm_core::fusion::{choose_fusion, num_shuffles, FusionLevel};
use vqllm_core::{CachePlacement, ComputeOp, KernelPlanner, OptLevel, ProfileSummary};
use vqllm_gpu::GpuSpec;
use vqllm_kernels::traffic::model_codebook_access;
use vqllm_kernels::{vq_kernel, AccessProfile};
use vqllm_vq::VqAlgorithm;

fn main() {
    let mut r = Report::new(
        "ablation",
        "Sensitivity studies for each adaptive heuristic",
    );
    let gpu = GpuSpec::rtx4090();

    // --- 1. Split factor ---
    r.section("split factor: total traffic = cb/split + split x output");
    let cb_traffic = 16.0e6; // CQ-2 attention baseline staging
    let output = 8192.0;
    let best = optimal_split_factor(cb_traffic, output, 64);
    for split in [1usize, 2, 4, 8, 16, 32, 44, 64] {
        let total = cb_traffic / split as f64 + split as f64 * output;
        let marker = if split == best {
            "  <- chosen optimum"
        } else {
            ""
        };
        r.line(format!(
            "split {split:3}: codebook {} + reduce {} = {}{marker}",
            fmt_bytes(cb_traffic / split as f64),
            fmt_bytes(split as f64 * output),
            fmt_bytes(total),
        ));
    }
    let t = |s: usize| cb_traffic / s as f64 + s as f64 * output;
    r.line(format!(
        "[{}] chosen split {best} minimizes total traffic",
        if t(best) <= t(best.saturating_sub(1).max(1)) && t(best) <= t(best + 1) {
            "MATCH"
        } else {
            "DEVIATION"
        }
    ));

    // --- 2. Shared boundary sweep (attention CQ-2) ---
    r.section("shared boundary: attention latency vs cached entries per book");
    let vq = VqAlgorithm::Cq2.config();
    let op = ComputeOp::attention_decode(32, 128, 4096, 8);
    let planner = KernelPlanner::new(gpu.clone());
    let base = planner
        .plan_at(&vq, &op, OptLevel::O2, &ProfileSummary::default_for(&vq))
        .expect("plan");
    let profile = AccessProfile::default_for(&vq);
    let chosen = base.placement.n_shared;
    let mut best_seen = (0usize, f64::INFINITY);
    for n_shared in [0usize, 32, 64, 96, 128, 192, 256] {
        let mut plan = base.clone();
        plan.placement = CachePlacement { n_reg: 0, n_shared };
        plan.smem_codebook_bytes =
            (n_shared * vqllm_core::engine::entry_cache_bytes(&vq) * plan.books_per_block)
                .min(plan.books_per_block * vqllm_core::engine::kernel_codebook_bytes(&vq));
        let out = vq_kernel::estimate(&gpu, &plan, &profile);
        if out.us() < best_seen.1 {
            best_seen = (n_shared, out.us());
        }
        r.line(format!(
            "n_shared {n_shared:4}: {}  (occupancy {} blocks/SM)",
            fmt_us(out.us()),
            out.latency.occupancy.blocks_per_sm
        ));
    }
    r.line(format!(
        "slack heuristic chose n_shared = {chosen}; sweep optimum at {} — \
         within the flat region around the slack point",
        best_seen.0
    ));

    // --- 3. Register boundary sweep (AQLM GeMV) ---
    r.section("register boundary: bank-conflict cycles vs hot entries in registers");
    let aqlm = VqAlgorithm::Aqlm3.config();
    let aprofile = AccessProfile::default_for(&aqlm);
    for n_reg in [0usize, 4, 8, 16, 32, 64] {
        let placement = CachePlacement {
            n_reg,
            n_shared: 2048,
        };
        let cost = model_codebook_access(
            &aprofile,
            &placement,
            vqllm_core::engine::entry_cache_bytes(&aqlm),
            &gpu,
            256,
            7,
        );
        r.line(format!(
            "n_reg {n_reg:3}: conflicts/warp {:5.2}, served from regs {:4.1}%",
            cost.conflict_cycles_per_warp,
            cost.frac_reg * 100.0
        ));
    }
    let no_reg = model_codebook_access(
        &aprofile,
        &CachePlacement {
            n_reg: 0,
            n_shared: 2048,
        },
        32,
        &gpu,
        256,
        7,
    );
    let with_reg = model_codebook_access(
        &aprofile,
        &CachePlacement {
            n_reg: 32,
            n_shared: 2048,
        },
        32,
        &gpu,
        256,
        7,
    );
    r.line(format!(
        "[{}] register caching of the hot head reduces bank conflicts",
        if with_reg.conflict_cycles_per_warp < no_reg.conflict_cycles_per_warp {
            "MATCH"
        } else {
            "DEVIATION"
        }
    ));

    // --- 4. Shuffle threshold ---
    r.section("fusion threshold: shuffle cost vs shared round-trip (per warp fragment)");
    // Cost model: shuffles ≈ 1 cycle each; shared round-trip ≈ 3 cycles per
    // 128 B (store w/ conflicts + load) over 32 lanes × v × 2 B.
    for (v, layout) in [(2usize, 1usize), (4, 1), (4, 2), (8, 2), (8, 1), (16, 1)] {
        let n = num_shuffles(v, layout);
        let shuffle_cycles = n as f64;
        let shared_cycles = 3.0 * (32 * v * 2) as f64 / 128.0;
        let decision = choose_fusion(v, layout);
        r.line(format!(
            "v={v:2} layout={layout}: {n} shuffles ({shuffle_cycles:4.1} cyc) vs shared {shared_cycles:4.1} cyc → {:?}",
            decision
        ));
    }
    let reg_when_cheap = matches!(choose_fusion(8, 2), FusionLevel::Register { .. });
    let shared_when_costly = matches!(choose_fusion(8, 1), FusionLevel::Shared);
    r.line(format!(
        "[{}] threshold keeps register fusion only while shuffles < 5",
        if reg_when_cheap && shared_when_costly {
            "MATCH"
        } else {
            "DEVIATION"
        }
    ));

    r.finish();
}
