//! Regenerates every table and figure: runs each experiment binary's logic
//! in-process and tees results into `results/`.
//!
//! Usage: `cargo run -p vqllm-bench --bin figures --release`

use std::process::Command;

fn main() {
    let bins = [
        "tbl02", "tbl03", "tbl05", "fig02", "fig04", "fig08", "fig09", "fig10", "fig13", "fig14",
        "fig15", "fig16", "fig17", "fig18",
    ];
    let exe = std::env::current_exe().expect("current exe path");
    let dir = exe.parent().expect("bin dir");
    let mut failed = Vec::new();
    for bin in bins {
        println!("\n=== running {bin} ===");
        let status = Command::new(dir.join(bin)).status();
        match status {
            Ok(s) if s.success() => {}
            _ => failed.push(bin),
        }
    }
    if failed.is_empty() {
        println!("\nAll experiments regenerated; outputs in results/.");
    } else {
        eprintln!("\nFAILED: {failed:?}");
        std::process::exit(1);
    }
}
