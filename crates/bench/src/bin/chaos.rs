//! Chaos harness for the serving stack — the fault-tolerance acceptance
//! bin. Drives the engine driver and the TCP front end **under injected
//! fault schedules** (`vqllm_core::failpoint`) and gates that the
//! service degrades the way the design promises:
//!
//! * **kernel panic storm** — a burst of forced group panics quarantines
//!   each victim with a typed `internal` rejection; the driver keeps
//!   serving and healthy follow-ups decode **bitwise identical** to a
//!   solo `Session` drain;
//! * **wedged step** — an injected in-step delay blows the configured
//!   `step_timeout_us`; the watchdog sheds the running group (typed) and
//!   trips the breaker, after which healthy traffic completes normally;
//! * **forced KV exhaustion** — the `llm.step.append` failpoint
//!   quarantines exactly the offending request (`kv_capacity`); its
//!   batch-mate finishes bitwise-equal to solo;
//! * **driver kill over TCP** — a forced panic in the driver loop under
//!   a *supervised* loopback server: the pre-kill request resolves on
//!   the wire as `driver_restarted` with a computed retry hint, the
//!   connection survives, and post-restart requests stream solo-exact
//!   bytes.
//!
//! Cross-cutting gates (asserted with `--smoke`, exit 1 on failure): no
//! healthy request's bytes ever diverge from solo, no wait ever hangs
//! (every resolution observed within a generous deadline), and
//! `inflight_tokens` returns to exactly zero at idle after every
//! scenario. Results merge into `BENCH_serving.json` under `chaos_*`
//! keys (shared with `serve_bench`/`net_load`, existing keys preserved).

use std::io::{BufRead, BufReader, Write as _};
use std::net::TcpStream;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use vq_llm::core::failpoint::{self, Action};
use vq_llm::net::json::{self, Json};
use vq_llm::net::{loopback_supervised, percentile, proto, spawn_driver, NetConfig};
use vq_llm::tensor::synth;
use vq_llm::{
    AdmissionConfig, ContextHandle, DecodeRequest, Engine, EngineFactory, NetRequest,
    ProfileConfig, RejectReason, ServeConfig, Session, SharedContext, SupervisorConfig, TicketEnd,
    VqAlgorithm,
};
use vqllm_bench::Report;

const SEQ: usize = 256;
const HEAD_DIM: usize = 32;
const MAX_BATCH: usize = 4;
/// Every wait in this harness bounds itself by this deadline; hitting it
/// is itself a gate failure (a hung client).
const WAIT: Duration = Duration::from_secs(120);

/// One shared (session, quantized context) pair — quantization is the
/// expensive part, and sharing the backend keeps decode bytes
/// comparable with solo drains.
fn harness() -> &'static (Session, SharedContext) {
    static HARNESS: OnceLock<(Session, SharedContext)> = OnceLock::new();
    HARNESS.get_or_init(|| {
        let session = Session::builder()
            .cpu_threads(2)
            .weight_algo(VqAlgorithm::Gptvq2)
            .kv_algo(VqAlgorithm::Cq4)
            .build()
            .expect("session");
        let k = synth::kv_stream(SEQ, HEAD_DIM, 0.85, 31);
        let v = synth::kv_stream(SEQ, HEAD_DIM, 0.85, 32);
        let w = synth::correlated_channels(HEAD_DIM, HEAD_DIM, 4, 0.9, 33);
        let ctx = SharedContext::new(
            session.quantize_kv(&k, 1).expect("K"),
            session.quantize_kv(&v, 2).expect("V"),
            session.quantize_weights(&w, 3).expect("W"),
        )
        .expect("context");
        (session, ctx)
    })
}

fn engine(max_batch: usize, max_queue: usize) -> (Engine, ContextHandle) {
    let (session, ctx) = harness();
    let mut engine = Engine::builder()
        .backend(std::sync::Arc::clone(session.backend()))
        .weight_algo(VqAlgorithm::Gptvq2)
        .kv_algo(VqAlgorithm::Cq4)
        .serve_config(ServeConfig::new(max_batch, max_queue))
        .profile_config(ProfileConfig::disabled())
        .build()
        .expect("engine");
    let handle = engine.register_context(ctx.clone()).expect("register");
    (engine, handle)
}

fn factory(max_batch: usize, max_queue: usize) -> EngineFactory {
    Box::new(move || {
        let (engine, handle) = engine(max_batch, max_queue);
        Ok((engine, vec![handle]))
    })
}

fn query(tenant: u64) -> Vec<f32> {
    (0..HEAD_DIM)
        .map(|d| ((tenant as usize * 13 + d) as f32 * 0.21).sin())
        .collect()
}

/// Drains one request alone through `Session::serve` — the byte-level
/// reference every healthy request is gated against.
fn solo_reference(req: DecodeRequest) -> Vec<Vec<f32>> {
    let (session, ctx) = harness();
    let mut srv = session
        .serve(ctx.clone(), ServeConfig::new(1, 1))
        .expect("solo server");
    let handle = srv.submit(req).expect("admitted");
    srv.run_until_drained().expect("drained");
    srv.take_output(&handle).expect("finished").steps
}

/// The OK:/FAIL: gate ledger; any failure flips the process exit code
/// under `--smoke`.
struct Gates {
    failed: bool,
}

impl Gates {
    fn check(&mut self, ok: bool, what: &str) {
        if ok {
            println!("OK: {what}");
        } else {
            eprintln!("FAIL: {what}");
            self.failed = true;
        }
    }
}

/// Scenario totals folded into the BENCH keys.
#[derive(Default)]
struct Totals {
    quarantined: u64,
    restarts: u64,
    watchdog_sheds: u64,
    healthy_completed: usize,
    healthy_us: Vec<f64>,
}

/// Submits `n` healthy requests, waits for all of them, and gates each
/// against the solo reference. Returns how many completed bitwise-equal.
fn healthy_wave(
    client: &vq_llm::Client,
    h: ContextHandle,
    base_tenant: u64,
    n: usize,
    totals: &mut Totals,
) -> usize {
    let reqs: Vec<DecodeRequest> = (0..n)
        .map(|i| {
            let tenant = base_tenant + i as u64;
            DecodeRequest::new(tenant, query(tenant), 20 + i, 2 + i % 3)
        })
        .collect();
    let t0 = Instant::now();
    let tickets: Vec<_> = reqs
        .iter()
        .map(|r| client.submit(NetRequest::new(h, r.clone())))
        .collect();
    let mut ok = 0;
    for (req, t) in reqs.into_iter().zip(&tickets) {
        match client.wait_timeout(t, WAIT) {
            Ok(TicketEnd::Finished(out)) if out.steps == solo_reference(req) => {
                totals.healthy_us.push(t0.elapsed().as_secs_f64() * 1e6);
                ok += 1;
            }
            Ok(TicketEnd::Finished(_)) => eprintln!("healthy decode diverged from solo"),
            other => eprintln!("healthy request did not finish: {other:?}"),
        }
    }
    totals.healthy_completed += ok;
    ok
}

/// Waits for the driver to go idle and returns its inflight-token gauge
/// (`u64::MAX` if it never idles or died).
fn idle_inflight(client: &vq_llm::Client) -> u64 {
    let deadline = Instant::now() + WAIT;
    while Instant::now() < deadline {
        match client.stats() {
            Some(s) if s.front_queued == 0 && s.engine_queued == 0 && s.running == 0 => {
                return s.inflight_tokens;
            }
            Some(_) => std::thread::sleep(Duration::from_millis(5)),
            None => break,
        }
    }
    u64::MAX
}

/// A burst of forced kernel panics: each victim quarantines typed, the
/// service survives, healthy traffic decodes solo-exact afterwards.
fn scenario_panic_storm(report: &mut Report, gates: &mut Gates, totals: &mut Totals, storm: usize) {
    report.section(&format!("scenario: kernel panic storm ({storm} forced)"));
    let (engine, h) = engine(MAX_BATCH, 64);
    let (client, driver) = spawn_driver(engine, AdmissionConfig::default());

    failpoint::configure(
        "llm.step.group",
        Action::Panic("chaos: forced kernel panic".into()),
        0,
        Some(storm as u64),
    );
    let mut typed = 0;
    for i in 0..storm {
        let tenant = 100 + i as u64;
        let t = client.submit(NetRequest::new(
            h,
            DecodeRequest::new(tenant, query(tenant), 20, 3),
        ));
        match client.wait_timeout(&t, WAIT) {
            Ok(TicketEnd::Rejected {
                reason: RejectReason::Internal { .. },
                ..
            }) => typed += 1,
            other => eprintln!("storm victim {i} resolved unexpectedly: {other:?}"),
        }
    }
    failpoint::clear();
    let healthy = healthy_wave(&client, h, 200, storm + 1, totals);
    let m = client.metrics();
    let inflight = idle_inflight(&client);
    totals.quarantined += m.quarantined;
    report.line(format!(
        "  {typed}/{storm} victims typed internal; {healthy}/{} healthy solo-exact after; \
         quarantined {}, idle inflight {inflight}",
        storm + 1,
        m.quarantined
    ));
    gates.check(
        typed == storm,
        &format!("panic storm: all {storm} victims quarantined with typed internal rejections"),
    );
    gates.check(
        healthy == storm + 1,
        "panic storm: every healthy follow-up decoded bitwise-equal to solo",
    );
    gates.check(
        inflight == 0,
        "panic storm: inflight tokens exactly 0 at idle",
    );
    driver.shutdown();
}

/// An injected in-step delay wedges a step past `step_timeout_us`: the
/// watchdog sheds the running group typed and trips the breaker, then
/// healthy traffic completes at the (temporarily halved) batch.
fn scenario_wedged_step(report: &mut Report, gates: &mut Gates, totals: &mut Totals) {
    report.section("scenario: wedged step (watchdog + breaker)");
    let cfg = AdmissionConfig {
        step_timeout_us: Some(50_000),
        ..AdmissionConfig::default()
    };
    let (engine, h) = engine(MAX_BATCH, 64);
    let (client, driver) = spawn_driver(engine, cfg);

    failpoint::configure("llm.step.group", Action::DelayMs(150), 0, Some(1));
    let wedged = client.submit(NetRequest::new(h, DecodeRequest::new(1, query(1), 20, 4)));
    let end = client.wait_timeout(&wedged, WAIT);
    let shed_typed = matches!(
        end,
        Ok(TicketEnd::Rejected {
            reason: RejectReason::Internal { .. },
            ..
        })
    );
    if !shed_typed {
        eprintln!("wedged request resolved unexpectedly: {end:?}");
    }
    failpoint::clear();
    let healthy = healthy_wave(&client, h, 300, 3, totals);
    let m = client.metrics();
    let inflight = idle_inflight(&client);
    totals.watchdog_sheds += m.watchdog_sheds;
    report.line(format!(
        "  watchdog sheds {}, breaker trips {}, {healthy}/3 healthy solo-exact after, \
         idle inflight {inflight}",
        m.watchdog_sheds, m.breaker_trips
    ));
    gates.check(
        shed_typed && m.watchdog_sheds >= 1,
        "wedged step: watchdog shed the running group with a typed rejection",
    );
    gates.check(
        m.breaker_trips >= 1,
        "wedged step: the breaker tripped (halved batch cooldown)",
    );
    gates.check(
        healthy == 3,
        "wedged step: healthy traffic completed solo-exact after the breaker",
    );
    gates.check(
        inflight == 0,
        "wedged step: inflight tokens exactly 0 at idle",
    );
    driver.shutdown();
}

/// Forced KV exhaustion quarantines exactly the offending request; its
/// batch-mate is untouched and bitwise-equal to solo.
fn scenario_kv_exhaustion(report: &mut Report, gates: &mut Gates, totals: &mut Totals) {
    report.section("scenario: forced KV exhaustion (single-request quarantine)");
    let (engine, h) = engine(MAX_BATCH, 64);
    let (client, driver) = spawn_driver(engine, AdmissionConfig::default());

    failpoint::configure(
        "llm.step.append",
        Action::Error("chaos: forced exhaustion".into()),
        0,
        Some(1),
    );
    let victim = client.submit(NetRequest::new(h, DecodeRequest::new(1, query(1), 20, 4)));
    let mate_req = DecodeRequest::new(2, query(2), 20, 4);
    let mate = client.submit(NetRequest::new(h, mate_req.clone()));
    let v_end = client.wait_timeout(&victim, WAIT);
    let v_typed = matches!(
        v_end,
        Ok(TicketEnd::Rejected {
            reason: RejectReason::KvCapacity { .. },
            ..
        })
    );
    if !v_typed {
        eprintln!("exhaustion victim resolved unexpectedly: {v_end:?}");
    }
    let mate_exact = matches!(
        client.wait_timeout(&mate, WAIT),
        Ok(TicketEnd::Finished(out)) if out.steps == solo_reference(mate_req)
    );
    failpoint::clear();
    let m = client.metrics();
    let inflight = idle_inflight(&client);
    totals.quarantined += m.quarantined;
    if mate_exact {
        totals.healthy_completed += 1;
    }
    report.line(format!(
        "  victim typed kv_capacity: {v_typed}; batch-mate solo-exact: {mate_exact}; \
         quarantined {}, idle inflight {inflight}",
        m.quarantined
    ));
    gates.check(
        v_typed && m.quarantined == 1,
        "kv exhaustion: exactly the offending request quarantined, typed kv_capacity",
    );
    gates.check(
        mate_exact,
        "kv exhaustion: the batch-mate finished bitwise-equal to solo",
    );
    gates.check(
        inflight == 0,
        "kv exhaustion: inflight tokens exactly 0 at idle",
    );
    driver.shutdown();
}

/// Reads frames until a terminal event for `id` (`done` or `rejected`);
/// returns (streamed rows, reject info if rejected).
#[allow(clippy::type_complexity)]
fn read_to_terminal(
    reader: &mut BufReader<TcpStream>,
) -> Result<(Vec<Vec<f32>>, Option<(String, u64)>), String> {
    let mut rows = Vec::new();
    for _ in 0..4096 {
        let mut line = String::new();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| format!("read: {e}"))?;
        if n == 0 {
            return Err("EOF mid-request".into());
        }
        let v = json::parse(line.trim()).map_err(|e| format!("bad frame {line:?}: {e}"))?;
        match v.get("event").and_then(Json::as_str) {
            Some("token") => {
                rows.push(v.get("value").and_then(Json::as_f32s).ok_or("no value")?);
            }
            Some("done") => return Ok((rows, None)),
            Some("rejected") => {
                let reason = v
                    .get("reason")
                    .and_then(Json::as_str)
                    .unwrap_or("?")
                    .to_string();
                let retry = v.get("retry_after_ms").and_then(Json::as_u64).unwrap_or(0);
                return Ok((rows, Some((reason, retry))));
            }
            _ => {}
        }
    }
    Err("no terminal frame within 4096 frames".into())
}

/// A forced driver kill under the supervised TCP front end: the pre-kill
/// request resolves `driver_restarted` on the wire, the connection
/// survives the restart, and post-restart requests stream solo-exact
/// bytes.
fn scenario_driver_kill(report: &mut Report, gates: &mut Gates, totals: &mut Totals, post: usize) {
    report.section(&format!(
        "scenario: driver kill under supervision ({post} healthy requests across the restart)"
    ));
    let server = loopback_supervised(
        factory(MAX_BATCH, 64),
        AdmissionConfig::default(),
        SupervisorConfig::default(),
        NetConfig::default(),
    )
    .expect("bind supervised loopback");
    let addr = server.local_addr();
    let client = server.client().clone();

    let stream = TcpStream::connect(addr).expect("connect");
    let _ = stream.set_read_timeout(Some(WAIT));
    let _ = stream.set_nodelay(true);
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let mut hello = String::new();
    reader.read_line(&mut hello).expect("hello");

    // Kill the driver on its next step: the in-flight request must come
    // back on the wire as a typed driver_restarted with a retry hint.
    failpoint::configure(
        "net.driver.step",
        Action::Panic("chaos: forced driver kill".into()),
        0,
        Some(1),
    );
    let q = query(7);
    let line = proto::submit_line(0, 7, &q, 20, 4, 0, None, true);
    writeln!(writer, "{line}").expect("submit");
    let (_, reject) = read_to_terminal(&mut reader).expect("pre-kill terminal");
    let restarted_typed =
        matches!(&reject, Some((code, retry)) if code == "driver_restarted" && *retry >= 1);
    if !restarted_typed {
        eprintln!("pre-kill request resolved unexpectedly: {reject:?}");
    }
    failpoint::clear();

    // The same connection keeps working against the rebuilt engine.
    let mut exact = 0;
    let t0 = Instant::now();
    for i in 0..post {
        let tenant = 400 + i as u64;
        let req = DecodeRequest::new(tenant, query(tenant), 20, 3);
        let line = proto::submit_line(0, tenant, &query(tenant), 20, 3, 0, None, true);
        writeln!(writer, "{line}").expect("submit");
        match read_to_terminal(&mut reader) {
            Ok((rows, None)) if rows == solo_reference(req) => {
                totals.healthy_us.push(t0.elapsed().as_secs_f64() * 1e6);
                exact += 1;
            }
            Ok((_, None)) => eprintln!("post-restart decode {i} diverged from solo"),
            other => eprintln!("post-restart request {i} failed: {other:?}"),
        }
    }
    totals.healthy_completed += exact;
    let m = client.metrics();
    let inflight = idle_inflight(&client);
    totals.restarts += m.restarts;
    report.line(format!(
        "  pre-kill typed driver_restarted: {restarted_typed}; {exact}/{post} post-restart \
         solo-exact; restarts {}, idle inflight {inflight}",
        m.restarts
    ));
    gates.check(
        restarted_typed,
        "driver kill: pre-kill request resolved driver_restarted with retry hint >= 1",
    );
    gates.check(
        exact == post && post >= 1,
        "driver kill: healthy requests completed solo-exact across the forced restart",
    );
    gates.check(m.restarts == 1, "driver kill: exactly one restart counted");
    gates.check(
        inflight == 0,
        "driver kill: inflight tokens exactly 0 at idle",
    );
    let drain = server.drain(Duration::from_secs(60));
    gates.check(
        drain.cancelled == 0,
        "driver kill: graceful drain completed without escalation",
    );
}

/// Upserts `key` in a top-level JSON object.
fn set(fields: &mut Vec<(String, Json)>, key: &str, v: Json) {
    match fields.iter_mut().find(|(k, _)| k == key) {
        Some(slot) => slot.1 = v,
        None => fields.push((key.to_string(), v)),
    }
}

fn num(n: f64) -> Json {
    Json::Num((n * 10.0).round() / 10.0)
}

/// One key per line — the same human-diffable shape `serve_bench` writes.
fn render_pretty(fields: &[(String, Json)]) -> String {
    let mut s = String::from("{\n");
    for (i, (k, v)) in fields.iter().enumerate() {
        s.push_str("  ");
        json::push_escaped(k, &mut s);
        s.push_str(": ");
        s.push_str(&json::to_string(v));
        if i + 1 < fields.len() {
            s.push(',');
        }
        s.push('\n');
    }
    s.push_str("}\n");
    s
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (storm, post) = if smoke { (3, 3) } else { (8, 6) };
    let mut report = Report::new(
        "chaos",
        "Injected fault schedules: quarantine, watchdog, supervised restart",
    );
    let mut gates = Gates { failed: false };
    let mut totals = Totals::default();

    // Failpoints are process-global: clear between scenarios so each
    // schedule is exactly what the scenario armed.
    failpoint::clear();
    scenario_panic_storm(&mut report, &mut gates, &mut totals, storm);
    failpoint::clear();
    scenario_wedged_step(&mut report, &mut gates, &mut totals);
    failpoint::clear();
    scenario_kv_exhaustion(&mut report, &mut gates, &mut totals);
    failpoint::clear();
    scenario_driver_kill(&mut report, &mut gates, &mut totals, post);
    failpoint::clear();

    totals
        .healthy_us
        .sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
    let p99_us = percentile(&totals.healthy_us, 0.99);

    // Merge the chaos_* keys into BENCH_serving.json, preserving
    // whatever serve_bench / net_load last wrote there.
    let mut json_path = vqllm_bench::results_dir();
    json_path.pop();
    json_path.push("BENCH_serving.json");
    let mut fields = match std::fs::read_to_string(&json_path)
        .ok()
        .and_then(|s| json::parse(&s).ok())
    {
        Some(Json::Obj(fields)) => fields,
        _ => Vec::new(),
    };
    set(&mut fields, "chaos_restarts", num(totals.restarts as f64));
    set(
        &mut fields,
        "chaos_quarantined",
        num(totals.quarantined as f64),
    );
    set(
        &mut fields,
        "chaos_watchdog_sheds",
        num(totals.watchdog_sheds as f64),
    );
    set(
        &mut fields,
        "chaos_healthy_requests",
        num(totals.healthy_completed as f64),
    );
    set(&mut fields, "chaos_healthy_p99_us", num(p99_us));
    let rendered = render_pretty(&fields);
    std::fs::write(&json_path, &rendered).expect("write BENCH_serving.json");
    report.section("BENCH_serving.json (chaos_* keys merged)");
    report.line(rendered.trim_end());
    report.finish();

    if gates.failed && smoke {
        std::process::exit(1);
    }
}
