//! Figure 9: hot entries are consistent across tensor parts.
//!
//! The paper's justification for tensor-level (rather than per-block)
//! frequency reordering: the per-block × entry access matrix shows
//! vertical "white lines" — entries hot in every block. We reproduce the
//! matrix on a quantized synthetic weight and report the cross-block
//! consistency plus an ASCII rendering of the hottest columns.

use vqllm_bench::Report;
use vqllm_tensor::synth;
use vqllm_vq::stats::{AccessHistogram, BlockAccessMatrix};
use vqllm_vq::{config::CodebookScope, VqConfig, VqQuantizer};

fn main() {
    let mut r = Report::new("fig09", "Entry hotness across tensor parts (paper Fig. 9)");
    // A 256-entry codebook keeps the rendering readable.
    let vq = VqConfig::new(8, 256, 1, CodebookScope::PerTensor).expect("valid config");
    let w = synth::gaussian_with_outliers(256, 512, 0.02, 0.01, 8.0, 11);
    let q = VqQuantizer::new(vq).quantize(&w, 3).expect("quantize");

    let blocks = 16;
    let matrix = BlockAccessMatrix::profile(&q, 0, blocks);
    let consistency = matrix.cross_block_consistency();

    r.line(format!(
        "tensor split into {blocks} row-band blocks, 256 entries"
    ));
    r.line(format!(
        "mean pairwise correlation of per-block histograms: {consistency:.3}"
    ));
    r.blank();

    // Render: rows = blocks, columns = the 48 globally-hottest entries,
    // '#' where the block accesses the entry above its own mean.
    let global = AccessHistogram::profile(&q, 0);
    let order = global.sort_permutation();
    r.section("per-block hotness of the 48 globally-hottest entries ('#' = above block mean)");
    for (b, h) in matrix.blocks().iter().enumerate() {
        let mean = h.mean();
        let row: String = order
            .iter()
            .take(48)
            .map(|&id| {
                if h.counts()[id as usize] as f64 > mean {
                    '#'
                } else {
                    '.'
                }
            })
            .collect();
        r.line(format!("block {b:2}: {row}"));
    }
    r.blank();
    r.line("Vertical '#' columns = entries consistently hot across blocks,");
    r.line("matching the paper's white lines and supporting tensor-level reorder.");
    r.line(format!(
        "[{}] cross-block consistency > 0.4",
        if consistency > 0.4 {
            "MATCH"
        } else {
            "DEVIATION"
        }
    ));
    r.finish();
}
