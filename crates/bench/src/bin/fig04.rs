//! Figure 4: the motivation study.
//!
//! (left)  Latency of VQ-attn-GC and VQ-attn-SC relative to FP16-attn.
//! (right) Performance counters of VQ-attn-SC relative to FP16-attn:
//!         SM utilization, shared usage, bank conflicts, Global→Shared
//!         traffic, Shared→Reg traffic.
//!
//! Workload: Llama-7B attention decode (32 heads × 128), seq 1024, CQ-2
//! (`VQ<4,8,1>`), RTX 4090.

use vqllm_bench::{fmt_us, Report};
use vqllm_core::{ComputeOp, KernelPlanner, OptLevel, ProfileSummary};
use vqllm_gpu::GpuSpec;
use vqllm_kernels::fp16::{self, AttnBaseline};
use vqllm_kernels::{vq_kernel, AccessProfile};
use vqllm_vq::VqAlgorithm;

fn main() {
    let mut r = Report::new("fig04", "VQ-attn-GC/SC vs FP16-attn (paper Fig. 4)");
    let gpu = GpuSpec::rtx4090();
    let op = ComputeOp::attention_decode(32, 128, 1024, 1);
    let vq = VqAlgorithm::Cq2.config();
    let profile = AccessProfile::default_for(&vq);
    let planner = KernelPlanner::new(gpu.clone());
    let prof = ProfileSummary::default_for(&vq);

    let fp = fp16::attention(&gpu, AttnBaseline::FlashDecoding, 1, 32, 128, 1024);
    let gc_plan = planner
        .plan_at(&vq, &op, OptLevel::Gc, &prof)
        .expect("plan GC");
    let sc_plan = planner
        .plan_at(&vq, &op, OptLevel::Sc, &prof)
        .expect("plan SC");
    let gc = vq_kernel::estimate(&gpu, &gc_plan, &profile);
    let sc = vq_kernel::estimate(&gpu, &sc_plan, &profile);

    r.section("(left) latency relative to FP16-attn");
    r.line(format!("FP16-attn   {}  (1.00x)", fmt_us(fp.us())));
    r.line(format!(
        "VQ-attn-GC  {}  ({:.2}x)",
        fmt_us(gc.us()),
        gc.us() / fp.us()
    ));
    r.line(format!(
        "VQ-attn-SC  {}  ({:.2}x)",
        fmt_us(sc.us()),
        sc.us() / fp.us()
    ));
    r.line("Paper: GC ≈ 2.3x, SC ≈ 1.4x, both slower than FP16 despite the 8x");
    r.line("memory reduction.");

    r.section("(right) VQ-attn-SC counters relative to FP16-attn");
    let sm_util = sc.latency.sm_utilization / fp.latency.sm_utilization.max(1e-9);
    let smem_usage = (sc_plan.tiling.smem_data_bytes + sc_plan.smem_codebook_bytes) as f64
        / sc_plan.tiling.smem_data_bytes as f64;
    let conflicts = if fp.counters.bank_conflict_cycles > 0.0 {
        sc.counters.bank_conflict_cycles / fp.counters.bank_conflict_cycles
    } else {
        f64::INFINITY
    };
    let g2s = sc.counters.global_to_shared_bytes / fp.counters.global_to_shared_bytes;
    let s2r = sc.counters.shared_reg_traffic() / fp.counters.shared_reg_traffic();
    r.line(format!(
        "SM utilization      {sm_util:6.2}x   (paper: > 30% drop, i.e. < 0.7)"
    ));
    r.line(format!(
        "Shared usage        {smem_usage:6.2}x   (paper: ~4-5x)"
    ));
    r.line(format!(
        "Bank conflicts      {}   (paper: enormous — FP16 has none)",
        if conflicts.is_infinite() {
            format!("{:.2e} cycles vs 0", sc.counters.bank_conflict_cycles)
        } else {
            format!("{conflicts:6.2}x")
        }
    ));
    r.line(format!(
        "Global→Shared       {g2s:6.2}x   (paper: > 1, counterintuitively)"
    ));
    r.line(format!(
        "Shared→Reg          {s2r:6.2}x   (paper: ~2x from the V-cache round-trip)"
    ));

    r.section("claims checked");
    r.line(claim(
        "GC and SC both slower than FP16",
        gc.us() > fp.us() && sc.us() > fp.us(),
    ));
    r.line(claim("SC outperforms GC", sc.us() < gc.us()));
    r.line(claim("SC drops SM utilization > 30%", sm_util < 0.7));
    r.line(claim("SC Global→Shared exceeds FP16", g2s > 1.0));
    r.line(claim("SC Shared→Reg exceeds FP16", s2r > 1.0));
    r.finish();
}

fn claim(what: &str, ok: bool) -> String {
    format!("[{}] {}", if ok { "MATCH" } else { "DEVIATION" }, what)
}
