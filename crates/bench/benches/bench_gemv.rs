//! Criterion: fused VQ-GeMV estimation across the optimization ladder and
//! the FP16/AWQ baselines (paper Fig. 14/16 GeMV panels).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vqllm_core::{ComputeOp, KernelPlanner, OptLevel, ProfileSummary};
use vqllm_gpu::GpuSpec;
use vqllm_kernels::{elementwise, fp16, vq_kernel, AccessProfile};
use vqllm_vq::VqAlgorithm;

fn bench_gemv(c: &mut Criterion) {
    let gpu = GpuSpec::rtx4090();
    let planner = KernelPlanner::new(gpu.clone());
    let op = ComputeOp::Gemv {
        n: 11008,
        k: 4096,
        batch: 1,
    };

    let mut g = c.benchmark_group("gemv");
    for level in OptLevel::ALL {
        let vq = VqAlgorithm::Aqlm3.config();
        let profile = AccessProfile::default_for(&vq);
        g.bench_with_input(
            BenchmarkId::new("aqlm3-estimate", level.name()),
            &level,
            |b, &level| {
                b.iter(|| {
                    let plan = planner
                        .plan_at(&vq, &op, level, &ProfileSummary::default_for(&vq))
                        .unwrap();
                    black_box(vq_kernel::estimate(&gpu, &plan, &profile))
                });
            },
        );
    }
    g.bench_function("fp16-baseline", |b| {
        b.iter(|| black_box(fp16::gemv(&gpu, 11008, 4096, 1)));
    });
    g.bench_function("awq4-baseline", |b| {
        b.iter(|| black_box(elementwise::awq_gemv(&gpu, 11008, 4096, 1)));
    });
    g.finish();
}

criterion_group!(benches, bench_gemv);
criterion_main!(benches);
