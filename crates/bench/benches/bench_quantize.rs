//! Criterion: quantization-pipeline throughput (k-means training, encode,
//! dequantize) for representative VQ configurations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vqllm_tensor::synth;
use vqllm_vq::config::{CodebookScope, VqConfig};
use vqllm_vq::VqQuantizer;

fn bench_quantize(c: &mut Criterion) {
    let mut g = c.benchmark_group("quantize");
    g.sample_size(10);
    let w = synth::correlated_channels(128, 256, 4, 0.9, 42);

    for (name, cfg) in [
        (
            "vq<4,6,1>",
            VqConfig::new(4, 64, 1, CodebookScope::PerTensor).unwrap(),
        ),
        (
            "vq<4,8,1>",
            VqConfig::new(4, 256, 1, CodebookScope::PerTensor).unwrap(),
        ),
        (
            "vq<8,8,2>",
            VqConfig::new(8, 256, 2, CodebookScope::PerTensor).unwrap(),
        ),
        (
            "vq<4,6,1>-tiled",
            VqConfig::new(4, 64, 1, CodebookScope::PerTile { rows: 64, cols: 64 }).unwrap(),
        ),
    ] {
        g.bench_with_input(BenchmarkId::new("train+encode", name), &cfg, |b, cfg| {
            b.iter(|| VqQuantizer::new(*cfg).quantize(black_box(&w), 7).unwrap());
        });
    }

    let cfg = VqConfig::new(4, 256, 1, CodebookScope::PerTensor).unwrap();
    let q = VqQuantizer::new(cfg).quantize(&w, 7).unwrap();
    g.bench_function("dequantize 128x256", |b| {
        b.iter(|| black_box(&q).dequantize().unwrap());
    });
    g.finish();
}

criterion_group!(benches, bench_quantize);
criterion_main!(benches);
