//! Criterion: codebook-cache hot paths — frequency profiling, reorder-based
//! load, and the Access lookup.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vqllm_core::{CachePlacement, CodebookCache};
use vqllm_gpu::GpuSpec;
use vqllm_kernels::traffic::{model_codebook_access, AccessProfile};
use vqllm_tensor::synth;
use vqllm_vq::config::{CodebookScope, VqConfig};
use vqllm_vq::stats::AccessHistogram;
use vqllm_vq::VqQuantizer;

fn bench_cache(c: &mut Criterion) {
    let cfg = VqConfig::new(4, 256, 1, CodebookScope::PerTensor).unwrap();
    let w = synth::gaussian_with_outliers(128, 256, 1.0, 0.02, 6.0, 17);
    let q = VqQuantizer::new(cfg).quantize(&w, 3).unwrap();
    let hist = AccessHistogram::profile(&q, 0);
    let book = q.codebooks().book(0, 0);
    let placement = CachePlacement {
        n_reg: 8,
        n_shared: 128,
    };
    let cache = CodebookCache::load(book, &hist, placement);

    let mut g = c.benchmark_group("codebook_cache");
    g.bench_function("profile 8k lookups", |b| {
        b.iter(|| black_box(AccessHistogram::profile(&q, 0)));
    });
    g.bench_function("load (reorder + remap)", |b| {
        b.iter(|| black_box(CodebookCache::load(book, &hist, placement)));
    });
    g.bench_function("access 256 entries", |b| {
        let mut out = [0.0f32; 4];
        b.iter(|| {
            for id in 0..256u32 {
                black_box(cache.access(id, &mut out));
            }
        });
    });
    g.bench_function("traffic model (256 warps)", |b| {
        let profile = AccessProfile::from_histogram(&hist);
        let gpu = GpuSpec::rtx4090();
        b.iter(|| {
            black_box(model_codebook_access(&profile, &placement, 8, &gpu, 256, 1));
        });
    });
    g.finish();
}

criterion_group!(benches, bench_cache);
criterion_main!(benches);
