//! Criterion: fused VQ-GeMM — planning, latency estimation, and the
//! functional execution path (paper Tbl. II algorithms × Fig. 14 GeMM).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vqllm_core::{ComputeOp, KernelPlanner, OptLevel, ProfileSummary};
use vqllm_gpu::GpuSpec;
use vqllm_kernels::{vq_kernel, AccessProfile};
use vqllm_tensor::synth;
use vqllm_vq::config::{CodebookScope, VqConfig};
use vqllm_vq::{VqAlgorithm, VqQuantizer};

fn bench_gemm(c: &mut Criterion) {
    let gpu = GpuSpec::rtx4090();
    let planner = KernelPlanner::new(gpu.clone());
    let op = ComputeOp::Gemm {
        m: 2048,
        n: 11008,
        k: 4096,
    };

    let mut g = c.benchmark_group("gemm");
    for algo in VqAlgorithm::WEIGHT {
        let vq = algo.config();
        let profile = AccessProfile::default_for(&vq);
        g.bench_with_input(
            BenchmarkId::new("plan+estimate", algo.name()),
            &vq,
            |b, vq| {
                b.iter(|| {
                    let plan = planner
                        .plan_at(vq, &op, OptLevel::O4, &ProfileSummary::default_for(vq))
                        .unwrap();
                    black_box(vq_kernel::estimate(&gpu, &plan, &profile))
                });
            },
        );
        g.bench_with_input(BenchmarkId::new("best_plan", algo.name()), &vq, |b, vq| {
            b.iter(|| black_box(vq_kernel::best_plan(&gpu, vq, &op, &profile).unwrap()));
        });
    }

    // Functional fused GeMM on a small tile.
    let cfg = VqConfig::new(4, 64, 1, CodebookScope::PerTensor).unwrap();
    let w = synth::correlated_channels(64, 64, 4, 0.9, 3);
    let wq = VqQuantizer::new(cfg).quantize(&w, 1).unwrap();
    let a = synth::gaussian(16, 64, 1.0, 5);
    let small = ComputeOp::Gemm {
        m: 16,
        n: 64,
        k: 64,
    };
    let plan = planner
        .plan_at(
            &cfg,
            &small,
            OptLevel::O4,
            &ProfileSummary::default_for(&cfg),
        )
        .unwrap();
    g.bench_function("functional 16x64x64", |b| {
        b.iter(|| vq_kernel::run_gemm(&gpu, &plan, black_box(&a), black_box(&wq)).unwrap());
    });
    g.finish();
}

criterion_group!(benches, bench_gemm);
criterion_main!(benches);
