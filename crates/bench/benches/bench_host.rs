//! Criterion: fused host kernels vs naive dequantize-then-`linalg`.
//!
//! Small-enough operands to keep the bench quick; the full-size asserted
//! comparison (4096×4096, ≥ 3× gate) lives in the `host_speedup` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vq_llm::kernels::host_exec::{self, HostBlocking};
use vq_llm::tensor::linalg;
use vq_llm::vq::{CodebookScope, QuantizedTensor, VqConfig, VqQuantizer};
use vqllm_tensor::synth;

fn quantized(rows: usize, cols: usize) -> QuantizedTensor {
    let cfg = VqConfig::new(4, 256, 1, CodebookScope::PerTensor).expect("config");
    let w = synth::correlated_channels(rows, cols, 4, 0.9, 42);
    VqQuantizer::new(cfg).quantize(&w, 7).expect("quantize")
}

fn bench_host(c: &mut Criterion) {
    let (rows, cols) = (1024, 1024);
    let wq = quantized(rows, cols);
    let x: Vec<f32> = (0..cols).map(|i| (i as f32 * 0.37).sin()).collect();
    let xr: Vec<f32> = (0..rows).map(|i| (i as f32 * 0.23).cos()).collect();
    let blocking = HostBlocking::default();

    let mut g = c.benchmark_group("host");
    g.bench_with_input(BenchmarkId::new("gemv-naive", rows), &wq, |b, wq| {
        b.iter(|| {
            let w = wq.dequantize().expect("dequantize");
            black_box(linalg::gemv(&w, &x).expect("gemv"))
        });
    });
    g.bench_with_input(BenchmarkId::new("gemv-fused-lut", rows), &wq, |b, wq| {
        b.iter(|| black_box(host_exec::gemv_lut(wq, &x, &blocking).expect("gemv_lut")));
    });
    g.bench_with_input(BenchmarkId::new("gemv-xw-naive", rows), &wq, |b, wq| {
        b.iter(|| {
            let w = wq.dequantize().expect("dequantize").transposed();
            black_box(linalg::gemv(&w, &xr).expect("gemv"))
        });
    });
    g.bench_with_input(BenchmarkId::new("gemv-xw-fused", rows), &wq, |b, wq| {
        b.iter(|| black_box(host_exec::gemv_xw(&xr, wq, &blocking).expect("gemv_xw")));
    });

    let a = synth::gaussian(8, rows, 1.0, 5);
    g.bench_with_input(BenchmarkId::new("gemm-naive", 8), &wq, |b, wq| {
        b.iter(|| {
            let w = wq.dequantize().expect("dequantize");
            black_box(linalg::matmul(&a, &w).expect("matmul"))
        });
    });
    g.bench_with_input(BenchmarkId::new("gemm-fused", 8), &wq, |b, wq| {
        b.iter(|| black_box(host_exec::gemm_fused(&a, wq, &blocking).expect("gemm_fused")));
    });

    // Batched decode: shared code decode + batch-interleaved LUT vs
    // calling the single-activation kernel per batch lane.
    let batch = 8usize;
    let acts =
        vq_llm::tensor::Tensor2D::from_fn(batch, cols, |bi, c| ((bi * 31 + c) as f32 * 0.19).sin());
    g.bench_with_input(BenchmarkId::new("gemv-lut-looped", batch), &wq, |b, wq| {
        b.iter(|| {
            for bi in 0..batch {
                black_box(host_exec::gemv_lut(wq, acts.row(bi), &blocking).expect("gemv_lut"));
            }
        });
    });
    g.bench_with_input(BenchmarkId::new("gemv-lut-batch", batch), &wq, |b, wq| {
        b.iter(|| black_box(host_exec::gemv_lut_batch(wq, &acts, &blocking).expect("batch")));
    });
    g.finish();
}

/// Packed-index decode throughput: per-element `get()` (one word load +
/// shift/mask each, bit arithmetic recomputed per call) vs the bulk
/// `unpack_block()` fast path the kernels use — at a byte-aligned width
/// and at the unaligned AQLM-12 class width.
fn bench_unpack(c: &mut Criterion) {
    use vq_llm::vq::PackedIndices;
    let n = 64 * 1024;
    let mut g = c.benchmark_group("unpack");
    for bits in [8u8, 12] {
        let max = (1u32 << bits) - 1;
        let idx: Vec<u32> = (0..n as u32)
            .map(|i| i.wrapping_mul(2654435761) & max)
            .collect();
        let p = PackedIndices::pack(&idx, bits).expect("pack");
        g.bench_with_input(BenchmarkId::new("get", bits), &p, |b, p| {
            b.iter(|| {
                let mut acc = 0u64;
                for i in 0..n {
                    acc = acc.wrapping_add(u64::from(black_box(p.get(i))));
                }
                black_box(acc)
            });
        });
        let mut out = vec![0u32; n];
        g.bench_with_input(BenchmarkId::new("unpack_block", bits), &p, |b, p| {
            b.iter(|| {
                p.unpack_block(0, &mut out);
                black_box(out[n - 1])
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_host, bench_unpack);
criterion_main!(benches);
