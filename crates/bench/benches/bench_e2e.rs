//! Criterion: end-to-end pipeline evaluation throughput (one full Fig. 17
//! generation projection per iteration).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vqllm_gpu::GpuSpec;
use vqllm_llm::{LlamaConfig, Pipeline, QuantScheme};

fn bench_e2e(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2e");
    g.sample_size(10);
    for (name, scheme) in [
        ("fp16", QuantScheme::Fp16),
        ("qserve4", QuantScheme::QServe4),
        ("vqllm4", QuantScheme::vq_llm_4bit()),
        ("vqllm2", QuantScheme::vq_llm_2bit()),
    ] {
        g.bench_with_input(BenchmarkId::new("llama7b-gen256", name), &scheme, |b, scheme| {
            let p = Pipeline::new(GpuSpec::rtx4090(), LlamaConfig::llama_7b(), *scheme);
            b.iter(|| black_box(p.generate(1024, 256, 16)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_e2e);
criterion_main!(benches);
