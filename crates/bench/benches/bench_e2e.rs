//! Criterion: end-to-end pipeline evaluation throughput (one full Fig. 17
//! generation projection per iteration), through the `Session` facade.
//!
//! Two variants per scheme demonstrate the plan cache on the decode hot
//! path:
//!
//! * `cold`: a fresh `Pipeline` (fresh cache) every iteration — every
//!   decode-step op re-runs Alg. 2, once per (algo, op) key per iteration;
//! * `warm`: the session's shared cache — each op is planned exactly once
//!   across *all* iterations and served from the cache afterwards.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vq_llm::{BackendKind, GpuSpec, Pipeline, QuantScheme, Session};

fn bench_e2e(c: &mut Criterion) {
    let session = Session::builder()
        .gpu(GpuSpec::rtx4090())
        .build()
        .expect("valid session");
    let mut g = c.benchmark_group("e2e");
    g.sample_size(10);
    for (name, scheme) in [
        ("fp16", QuantScheme::Fp16),
        ("qserve4", QuantScheme::QServe4),
        ("vqllm4", QuantScheme::vq_llm_4bit()),
        ("vqllm2", QuantScheme::vq_llm_2bit()),
    ] {
        g.bench_with_input(
            BenchmarkId::new("llama7b-gen256-cold", name),
            &scheme,
            |b, scheme| {
                b.iter(|| {
                    // Fresh pipeline, fresh cache: re-plans every key.
                    let p = Pipeline::new(GpuSpec::rtx4090(), session.model(), *scheme);
                    black_box(p.generate(1024, 256, 16))
                });
            },
        );
        g.bench_with_input(
            BenchmarkId::new("llama7b-gen256-warm", name),
            &scheme,
            |b, scheme| {
                let p = session.pipeline(*scheme);
                b.iter(|| black_box(p.generate(1024, 256, 16)));
            },
        );
    }
    g.finish();

    // The cache's core claim, asserted: after the warm runs above, another
    // full generation plans *nothing* — every decode-step op of every VQ
    // scheme was planned once per (algo, op) key, not once per layer or
    // per iteration.
    let before = session.cache_stats();
    session
        .pipeline(QuantScheme::vq_llm_4bit())
        .generate(1024, 256, 16);
    session
        .pipeline(QuantScheme::vq_llm_2bit())
        .generate(1024, 256, 16);
    let after = session.cache_stats();
    assert_eq!(
        after.misses, before.misses,
        "warm pipelines must not re-plan"
    );
    println!(
        "plan cache: {} unique (algo, op) keys planned once; {} total lookups, \
         {:.1}% hit rate",
        session.plan_cache().len(),
        after.hits + after.misses,
        after.hit_rate() * 100.0
    );
}

/// The same workload through both shipped backends. The modelled E2E
/// projection is backend-independent by design (both plan/estimate with
/// the device model — asserted below); what *differs* is functional
/// execution, so that is what gets benched: `Session::run_gemv` walks the
/// modelled codebook cache on the perf-model backend vs the fused
/// LUT/aggregation kernels on `CpuBackend`.
fn bench_e2e_backends(c: &mut Criterion) {
    use vq_llm::tensor::synth;
    use vq_llm::ComputeOp;

    let mut g = c.benchmark_group("e2e-backends");
    g.sample_size(10);
    let w = synth::correlated_channels(1024, 256, 4, 0.9, 3);
    let op = ComputeOp::Gemv {
        n: 256,
        k: 1024,
        batch: 1,
    };
    let x: Vec<f32> = (0..1024).map(|i| (i as f32 * 0.13).sin()).collect();
    let mut reports = Vec::new();
    for (name, kind) in [
        ("perf-model", BackendKind::PerfModel),
        ("cpu", BackendKind::Cpu { threads: 0 }),
    ] {
        let session = Session::builder()
            .gpu(GpuSpec::rtx4090())
            .weight_algo(vq_llm::VqAlgorithm::Gptvq2)
            .backend_kind(kind)
            .build()
            .expect("valid session");
        assert_eq!(session.backend().name(), name);
        let wq = session.quantize_weights(&w, 7).expect("quantize");
        let plan = session.weight_plan(&op).expect("plan");
        g.bench_with_input(
            BenchmarkId::new("run-gemv-1024x256", name),
            &session,
            |b, s| {
                b.iter(|| black_box(s.run_gemv(&plan, &x, &wq).expect("run_gemv")));
            },
        );
        reports.push(
            session
                .pipeline(QuantScheme::vq_llm_4bit())
                .generate(1024, 256, 16),
        );
    }
    g.finish();
    assert_eq!(
        reports[0], reports[1],
        "modelled E2E projections must be backend-independent"
    );
}

criterion_group!(benches, bench_e2e, bench_e2e_backends);
criterion_main!(benches);
