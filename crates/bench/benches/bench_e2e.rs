//! Criterion: end-to-end pipeline evaluation throughput (one full Fig. 17
//! generation projection per iteration), through the `Session` facade.
//!
//! Two variants per scheme demonstrate the plan cache on the decode hot
//! path:
//!
//! * `cold`: a fresh `Pipeline` (fresh cache) every iteration — every
//!   decode-step op re-runs Alg. 2, once per (algo, op) key per iteration;
//! * `warm`: the session's shared cache — each op is planned exactly once
//!   across *all* iterations and served from the cache afterwards.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vq_llm::{GpuSpec, Pipeline, QuantScheme, Session};

fn bench_e2e(c: &mut Criterion) {
    let session = Session::builder()
        .gpu(GpuSpec::rtx4090())
        .build()
        .expect("valid session");
    let mut g = c.benchmark_group("e2e");
    g.sample_size(10);
    for (name, scheme) in [
        ("fp16", QuantScheme::Fp16),
        ("qserve4", QuantScheme::QServe4),
        ("vqllm4", QuantScheme::vq_llm_4bit()),
        ("vqllm2", QuantScheme::vq_llm_2bit()),
    ] {
        g.bench_with_input(
            BenchmarkId::new("llama7b-gen256-cold", name),
            &scheme,
            |b, scheme| {
                b.iter(|| {
                    // Fresh pipeline, fresh cache: re-plans every key.
                    let p = Pipeline::new(GpuSpec::rtx4090(), session.model(), *scheme);
                    black_box(p.generate(1024, 256, 16))
                });
            },
        );
        g.bench_with_input(
            BenchmarkId::new("llama7b-gen256-warm", name),
            &scheme,
            |b, scheme| {
                let p = session.pipeline(*scheme);
                b.iter(|| black_box(p.generate(1024, 256, 16)));
            },
        );
    }
    g.finish();

    // The cache's core claim, asserted: after the warm runs above, another
    // full generation plans *nothing* — every decode-step op of every VQ
    // scheme was planned once per (algo, op) key, not once per layer or
    // per iteration.
    let before = session.cache_stats();
    session
        .pipeline(QuantScheme::vq_llm_4bit())
        .generate(1024, 256, 16);
    session
        .pipeline(QuantScheme::vq_llm_2bit())
        .generate(1024, 256, 16);
    let after = session.cache_stats();
    assert_eq!(
        after.misses, before.misses,
        "warm pipelines must not re-plan"
    );
    println!(
        "plan cache: {} unique (algo, op) keys planned once; {} total lookups, \
         {:.1}% hit rate",
        session.plan_cache().len(),
        after.hits + after.misses,
        after.hit_rate() * 100.0
    );
}

criterion_group!(benches, bench_e2e);
criterion_main!(benches);
