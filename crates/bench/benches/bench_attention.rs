//! Criterion: attention-kernel modelling — the four FP16 baselines of
//! Fig. 18 plus the fused CQ kernels, and the functional fused path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vqllm_core::{ComputeOp, KernelPlanner};
use vqllm_gpu::GpuSpec;
use vqllm_kernels::fp16::{self, AttnBaseline};
use vqllm_kernels::{vq_kernel, AccessProfile};
use vqllm_tensor::synth;
use vqllm_vq::{VqAlgorithm, VqQuantizer};

fn bench_attention(c: &mut Criterion) {
    let gpu = GpuSpec::rtx4090();
    let mut g = c.benchmark_group("attention");

    for baseline in AttnBaseline::ALL {
        g.bench_with_input(
            BenchmarkId::new("fp16", baseline.name()),
            &baseline,
            |b, &baseline| {
                b.iter(|| black_box(fp16::attention(&gpu, baseline, 8, 32, 128, 4096)));
            },
        );
    }

    for algo in VqAlgorithm::KV_CACHE {
        let vq = algo.config();
        let profile = AccessProfile::default_for(&vq);
        let op = ComputeOp::attention_decode(32, 128, 4096, 8);
        g.bench_with_input(BenchmarkId::new("vq-best", algo.name()), &vq, |b, vq| {
            b.iter(|| black_box(vq_kernel::best_plan(&gpu, vq, &op, &profile).unwrap()));
        });
    }

    // Functional single-head fused attention.
    let vq = VqAlgorithm::Cq4.config();
    let k = synth::kv_stream(256, 64, 0.85, 1);
    let v = synth::kv_stream(256, 64, 0.85, 2);
    let kq = VqQuantizer::new(vq).quantize(&k, 3).unwrap();
    let vqv = VqQuantizer::new(vq).quantize(&v, 4).unwrap();
    let q: Vec<f32> = (0..64).map(|i| (i as f32 * 0.31).cos()).collect();
    let plan = KernelPlanner::new(gpu.clone())
        .plan(&vq, &ComputeOp::attention_decode(1, 64, 256, 1))
        .unwrap();
    g.bench_function("functional 256tok head", |b| {
        b.iter(|| {
            vq_kernel::run_attention_head(
                &gpu,
                &plan,
                black_box(&q),
                black_box(&kq),
                black_box(&vqv),
            )
            .unwrap()
        });
    });
    g.finish();
}

criterion_group!(benches, bench_attention);
criterion_main!(benches);
