//! Property-based tests for the GPU performance model.

use proptest::prelude::*;
use vqllm_gpu::{
    BlockResources, GlobalMemoryModel, GpuSpec, LaunchConfig, Occupancy, PerfCounters,
    SharedMemoryModel, TimingModel, Warp, WARP_SIZE,
};

proptest! {
    /// Occupancy is monotone non-increasing in every resource axis.
    #[test]
    fn occupancy_monotone_in_smem(
        threads in prop::sample::select(vec![32usize, 64, 128, 256, 512]),
        regs in 16usize..128,
        smem in 0usize..64 * 1024,
        extra in 1usize..32 * 1024,
    ) {
        let gpu = GpuSpec::rtx4090();
        let a = Occupancy::analyze(&gpu, &BlockResources::new(threads, regs, smem));
        let b = Occupancy::analyze(&gpu, &BlockResources::new(threads, regs, smem + extra));
        prop_assert!(b.blocks_per_sm <= a.blocks_per_sm);
    }

    /// Consuming the reported slack never reduces residency (the Fig. 10
    /// contract the codebook cache relies on).
    #[test]
    fn slack_is_safe_to_consume(
        threads in prop::sample::select(vec![64usize, 128, 256]),
        regs in 16usize..96,
        smem in 0usize..48 * 1024,
    ) {
        let gpu = GpuSpec::rtx4090();
        let base = BlockResources::new(threads, regs, smem);
        let occ = Occupancy::analyze(&gpu, &base);
        prop_assume!(occ.blocks_per_sm > 0);
        let grown = BlockResources::new(
            threads,
            regs + occ.reg_slack_per_thread,
            smem + occ.smem_slack_bytes,
        );
        let occ2 = Occupancy::analyze(&gpu, &grown);
        prop_assert_eq!(occ.blocks_per_sm, occ2.blocks_per_sm);
    }

    /// Bank-conflict cycles are bounded by [ideal, 32 × ideal].
    #[test]
    fn smem_cycles_bounded(addrs in proptest::collection::vec(0usize..16 * 1024, 32), width in prop::sample::select(vec![4usize, 8, 16])) {
        let m = SharedMemoryModel::with_banks(32, 4);
        let arr: [usize; 32] = addrs.as_slice().try_into().unwrap();
        // Align addresses to the element width, as a real kernel would.
        let arr: [usize; 32] = std::array::from_fn(|i| arr[i] / width * width);
        let a = m.warp_access_full(&arr, width);
        let ideal = width / 4;
        prop_assert!(a.cycles >= ideal);
        prop_assert!(a.cycles <= 32 * ideal);
        prop_assert_eq!(a.conflict_cycles, a.cycles - ideal);
    }

    /// Coalescing: transactions never exceed lane count × lines per element,
    /// and moved bytes always cover useful bytes.
    #[test]
    fn gmem_transactions_bounded(addrs in proptest::collection::vec(0usize..1 << 20, 32), width in prop::sample::select(vec![2usize, 4, 8, 16])) {
        let m = GlobalMemoryModel::with_line(128);
        let arr: [usize; 32] = addrs.as_slice().try_into().unwrap();
        let a = m.warp_access_full(&arr, width);
        prop_assert!(a.transactions >= 1);
        prop_assert!(a.transactions <= 32 * (width / 128 + 2));
        prop_assert!(a.dram_bytes >= a.useful_bytes.min(a.transactions * 128));
    }

    /// shfl_xor twice with the same mask restores the warp.
    #[test]
    fn shuffle_involution(vals in proptest::collection::vec(-100.0f32..100.0, WARP_SIZE), mask in 1usize..32) {
        let mut w = Warp::new(1);
        w.load_lanes(0, &vals).unwrap();
        let before = w.snapshot();
        w.shfl_xor(0, mask).unwrap();
        w.shfl_xor(0, mask).unwrap();
        prop_assert_eq!(w.snapshot(), before);
    }

    /// A shuffle is a permutation: multiset of values preserved.
    #[test]
    fn shuffle_is_permutation(vals in proptest::collection::vec(-100.0f32..100.0, WARP_SIZE), mask in 1usize..32) {
        let mut w = Warp::new(1);
        w.load_lanes(0, &vals).unwrap();
        w.shfl_xor(0, mask).unwrap();
        let mut a: Vec<f32> = w.snapshot();
        let mut b = vals.clone();
        a.sort_by(f32::total_cmp);
        b.sort_by(f32::total_cmp);
        prop_assert_eq!(a, b);
    }

    /// More work never means less latency, all else equal.
    #[test]
    fn latency_monotone_in_traffic(bytes in 1.0e6f64..1.0e9, factor in 1.1f64..8.0) {
        let m = TimingModel::new(GpuSpec::rtx4090());
        let launch = LaunchConfig::new(512, BlockResources::new(256, 32, 8 * 1024));
        let small = PerfCounters { dram_read_bytes: bytes, ..Default::default() };
        let big = PerfCounters { dram_read_bytes: bytes * factor, ..Default::default() };
        let a = m.latency(&launch, &small);
        let b = m.latency(&launch, &big);
        prop_assert!(b.total_us >= a.total_us);
    }

    /// The A40 is never faster than the 4090 on identical launches.
    #[test]
    fn a40_never_beats_4090(bytes in 1.0e6f64..1.0e9, flops in 1.0e6f64..1.0e12) {
        let launch = LaunchConfig::new(512, BlockResources::new(256, 32, 8 * 1024));
        let counters = PerfCounters {
            dram_read_bytes: bytes,
            flops,
            ..Default::default()
        };
        let fast = TimingModel::new(GpuSpec::rtx4090()).latency(&launch, &counters);
        let slow = TimingModel::new(GpuSpec::a40()).latency(&launch, &counters);
        prop_assert!(slow.total_us >= fast.total_us * 0.999);
    }
}
