//! Occupancy and resource-slack analysis (paper Fig. 10).
//!
//! The codebook cache's adaptive placement hinges on *slack*: the shared
//! memory and registers a block can consume **without** reducing the number
//! of blocks resident per SM. This module computes occupancy the way the
//! CUDA occupancy calculator does (min over four limiters) and derives the
//! slack from the binding limiter.

use crate::device::GpuSpec;
use serde::{Deserialize, Serialize};

/// Per-block resource appetite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BlockResources {
    /// Threads per block (multiple of the warp size in practice).
    pub threads: usize,
    /// Registers per thread.
    pub regs_per_thread: usize,
    /// Static + dynamic shared memory per block, bytes.
    pub smem_bytes: usize,
}

impl BlockResources {
    /// Creates a block-resource description.
    pub fn new(threads: usize, regs_per_thread: usize, smem_bytes: usize) -> Self {
        BlockResources {
            threads,
            regs_per_thread,
            smem_bytes,
        }
    }
}

/// Result of occupancy analysis for one block shape on one device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Occupancy {
    /// Blocks resident per SM.
    pub blocks_per_sm: usize,
    /// Resident warps per SM.
    pub warps_per_sm: usize,
    /// Fraction of the SM's maximum resident threads that are occupied.
    pub occupancy: f64,
    /// Which resource is the binding limiter.
    pub limiter: Limiter,
    /// Extra shared-memory bytes each block could take without reducing
    /// `blocks_per_sm` (the blue region of paper Fig. 10).
    pub smem_slack_bytes: usize,
    /// Extra registers per thread each block could take without reducing
    /// `blocks_per_sm`.
    pub reg_slack_per_thread: usize,
}

/// The resource that caps residency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Limiter {
    /// Thread count per SM.
    Threads,
    /// Register file capacity.
    Registers,
    /// Shared-memory capacity.
    SharedMemory,
    /// Block-slot count.
    BlockSlots,
    /// The block cannot run at all (exceeds a per-block limit).
    None,
}

impl Occupancy {
    /// Runs the occupancy calculation for `block` on `gpu`.
    ///
    /// Mirrors the CUDA occupancy calculator: residency is the minimum of
    /// the thread-, register-, shared-memory- and block-slot-limited block
    /// counts. Registers are allocated per warp at the device granularity.
    pub fn analyze(gpu: &GpuSpec, block: &BlockResources) -> Occupancy {
        if block.threads == 0
            || block.threads > gpu.max_threads_per_sm
            || block.smem_bytes > gpu.max_smem_per_block
        {
            return Occupancy {
                blocks_per_sm: 0,
                warps_per_sm: 0,
                occupancy: 0.0,
                limiter: Limiter::None,
                smem_slack_bytes: 0,
                reg_slack_per_thread: 0,
            };
        }

        let warps_per_block = block.threads.div_ceil(32);
        let regs_per_warp = round_up(block.regs_per_thread * 32, gpu.reg_alloc_granularity);
        let regs_per_block = (regs_per_warp * warps_per_block).max(1);

        let by_threads = gpu.max_threads_per_sm / block.threads;
        let by_regs = gpu.regs_per_sm / regs_per_block;
        let by_smem = gpu
            .smem_per_sm
            .checked_div(block.smem_bytes)
            .unwrap_or(usize::MAX);
        let by_slots = gpu.max_blocks_per_sm;

        let blocks = by_threads.min(by_regs).min(by_smem).min(by_slots);
        if blocks == 0 {
            return Occupancy {
                blocks_per_sm: 0,
                warps_per_sm: 0,
                occupancy: 0.0,
                limiter: Limiter::None,
                smem_slack_bytes: 0,
                reg_slack_per_thread: 0,
            };
        }

        let limiter = if blocks == by_threads {
            Limiter::Threads
        } else if blocks == by_slots {
            Limiter::BlockSlots
        } else if blocks == by_regs {
            Limiter::Registers
        } else {
            Limiter::SharedMemory
        };

        // Slack: the most a block can grow each resource while the same
        // number of blocks still fits (paper Fig. 10's blue region).
        let smem_budget_per_block = (gpu.smem_per_sm / blocks).min(gpu.max_smem_per_block);
        let smem_slack = smem_budget_per_block.saturating_sub(block.smem_bytes);

        let reg_budget_per_block = gpu.regs_per_sm / blocks;
        let reg_budget_per_warp = reg_budget_per_block / warps_per_block;
        // Invert the granularity rounding: largest per-thread count whose
        // rounded per-warp allocation still fits the budget.
        let reg_budget_per_thread = round_down(reg_budget_per_warp, gpu.reg_alloc_granularity) / 32;
        let reg_slack = reg_budget_per_thread.saturating_sub(block.regs_per_thread);

        Occupancy {
            blocks_per_sm: blocks,
            warps_per_sm: blocks * warps_per_block,
            occupancy: (blocks * block.threads) as f64 / gpu.max_threads_per_sm as f64,
            limiter,
            smem_slack_bytes: smem_slack,
            reg_slack_per_thread: reg_slack,
        }
    }
}

fn round_up(v: usize, g: usize) -> usize {
    v.div_ceil(g) * g
}

fn round_down(v: usize, g: usize) -> usize {
    v / g * g
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpu() -> GpuSpec {
        GpuSpec::rtx4090()
    }

    #[test]
    fn small_block_is_slot_or_thread_limited() {
        // 128 threads, tiny footprint: 1536/128 = 12 blocks by threads,
        // slots allow 24 → threads bind first.
        let occ = Occupancy::analyze(&gpu(), &BlockResources::new(128, 16, 0));
        assert_eq!(occ.blocks_per_sm, 12);
        assert_eq!(occ.limiter, Limiter::Threads);
        assert!((occ.occupancy - 1.0).abs() < 1e-9);
    }

    #[test]
    fn smem_heavy_block_is_smem_limited() {
        // 48 KB per block on a 100 KB SM → 2 blocks.
        let occ = Occupancy::analyze(&gpu(), &BlockResources::new(128, 16, 48 * 1024));
        assert_eq!(occ.blocks_per_sm, 2);
        assert_eq!(occ.limiter, Limiter::SharedMemory);
        // Slack: budget/block = 50 KB, minus current 48 KB.
        assert_eq!(occ.smem_slack_bytes, 2 * 1024);
    }

    #[test]
    fn reg_heavy_block_is_register_limited() {
        // 255 regs/thread × 256 threads ≈ 65 K regs → 1 block.
        let occ = Occupancy::analyze(&gpu(), &BlockResources::new(256, 255, 0));
        assert_eq!(occ.blocks_per_sm, 1);
        assert_eq!(occ.limiter, Limiter::Registers);
    }

    #[test]
    fn oversized_block_cannot_run() {
        let occ = Occupancy::analyze(&gpu(), &BlockResources::new(2048, 16, 0));
        assert_eq!(occ.blocks_per_sm, 0);
        assert_eq!(occ.limiter, Limiter::None);
        let occ = Occupancy::analyze(&gpu(), &BlockResources::new(128, 16, 100 * 1024));
        assert_eq!(occ.blocks_per_sm, 0);
    }

    #[test]
    fn smem_slack_vanishes_at_cliff_edge() {
        // Exactly 50 KB/block: 2 blocks fit, zero smem slack.
        let occ = Occupancy::analyze(&gpu(), &BlockResources::new(128, 16, 50 * 1024));
        assert_eq!(occ.blocks_per_sm, 2);
        assert_eq!(occ.smem_slack_bytes, 0);
    }

    #[test]
    fn consuming_slack_does_not_change_residency() {
        // Fig. 10's contract: growing by the reported slack keeps
        // blocks_per_sm constant; growing past it drops residency.
        let base = BlockResources::new(256, 32, 20 * 1024);
        let occ = Occupancy::analyze(&gpu(), &base);
        assert!(occ.blocks_per_sm > 0);

        let grown = BlockResources::new(256, 32, base.smem_bytes + occ.smem_slack_bytes);
        let occ2 = Occupancy::analyze(&gpu(), &grown);
        assert_eq!(occ.blocks_per_sm, occ2.blocks_per_sm);

        if grown.smem_bytes < gpu().max_smem_per_block {
            let over = BlockResources::new(256, 32, grown.smem_bytes + 1);
            let occ3 = Occupancy::analyze(&gpu(), &over);
            assert!(occ3.blocks_per_sm < occ.blocks_per_sm);
        }
    }

    #[test]
    fn register_slack_respects_granularity() {
        let base = BlockResources::new(256, 32, 0);
        let occ = Occupancy::analyze(&gpu(), &base);
        let grown = BlockResources::new(256, 32 + occ.reg_slack_per_thread, 0);
        let occ2 = Occupancy::analyze(&gpu(), &grown);
        assert_eq!(occ.blocks_per_sm, occ2.blocks_per_sm);
    }

    #[test]
    fn warps_per_sm_counts_blocks() {
        let occ = Occupancy::analyze(&gpu(), &BlockResources::new(256, 32, 32 * 1024));
        assert_eq!(occ.warps_per_sm, occ.blocks_per_sm * 8);
    }
}
