//! Kernel launch configuration.

use crate::occupancy::BlockResources;
use serde::{Deserialize, Serialize};

/// Grid-level description of a kernel launch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LaunchConfig {
    /// Total thread blocks in the grid.
    pub grid_blocks: usize,
    /// Per-block resource appetite.
    pub block: BlockResources,
}

impl LaunchConfig {
    /// Creates a launch configuration.
    pub fn new(grid_blocks: usize, block: BlockResources) -> Self {
        LaunchConfig { grid_blocks, block }
    }

    /// Total threads across the grid.
    pub fn total_threads(&self) -> usize {
        self.grid_blocks * self.block.threads
    }

    /// Total warps across the grid.
    pub fn total_warps(&self) -> usize {
        self.grid_blocks * self.block.threads.div_ceil(32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals() {
        let lc = LaunchConfig::new(10, BlockResources::new(96, 32, 0));
        assert_eq!(lc.total_threads(), 960);
        assert_eq!(lc.total_warps(), 30);
    }
}
