//! Global-memory coalescing model.
//!
//! Global loads/stores are serviced in 128-byte transactions (the L1 line).
//! A warp touching `n` distinct lines costs `n` transactions regardless of
//! how few bytes each lane wants — this is why the paper's VQ-attn-GC
//! version, which chases random codebook entries in global memory, sees only
//! a 12.45 % L1 hit rate and wastes most of each line it pulls.

use crate::device::GpuSpec;

/// Model of global-memory access granularity.
#[derive(Debug, Clone)]
pub struct GlobalMemoryModel {
    line: usize,
}

/// Outcome of a warp-wide global access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GmemAccess {
    /// 128-byte transactions issued.
    pub transactions: usize,
    /// Bytes actually moved over DRAM (transactions × line).
    pub dram_bytes: usize,
    /// Bytes the warp asked for (useful bytes).
    pub useful_bytes: usize,
}

impl GmemAccess {
    /// Fraction of moved bytes that were requested (1.0 = perfectly
    /// coalesced).
    pub fn efficiency(&self) -> f64 {
        if self.dram_bytes == 0 {
            return 1.0;
        }
        self.useful_bytes as f64 / self.dram_bytes as f64
    }
}

impl GlobalMemoryModel {
    /// Creates a coalescing model from a device spec.
    pub fn new(gpu: &GpuSpec) -> Self {
        GlobalMemoryModel {
            line: gpu.gmem_transaction_bytes,
        }
    }

    /// Creates a model with an explicit line size (tests).
    pub fn with_line(line: usize) -> Self {
        assert!(line.is_power_of_two(), "line size must be a power of two");
        GlobalMemoryModel { line }
    }

    /// Simulates one warp access: each active lane touches `elem_bytes`
    /// bytes at its byte address.
    pub fn warp_access(&self, addrs: &[Option<usize>], elem_bytes: usize) -> GmemAccess {
        assert!(elem_bytes > 0);
        let mut lines: Vec<usize> = Vec::with_capacity(32);
        let mut useful = 0usize;
        for addr in addrs.iter().flatten() {
            useful += elem_bytes;
            let first = addr / self.line;
            let last = (addr + elem_bytes - 1) / self.line;
            for l in first..=last {
                if !lines.contains(&l) {
                    lines.push(l);
                }
            }
        }
        GmemAccess {
            transactions: lines.len(),
            dram_bytes: lines.len() * self.line,
            useful_bytes: useful,
        }
    }

    /// Convenience: all 32 lanes active.
    pub fn warp_access_full(&self, addrs: &[usize; 32], elem_bytes: usize) -> GmemAccess {
        let opt: Vec<Option<usize>> = addrs.iter().map(|&a| Some(a)).collect();
        self.warp_access(&opt, elem_bytes)
    }

    /// Transactions for a perfectly-contiguous block copy of `bytes`
    /// starting at an aligned address (streaming loads of weights/KV).
    pub fn contiguous_bytes(&self, bytes: usize) -> GmemAccess {
        let transactions = bytes.div_ceil(self.line);
        GmemAccess {
            transactions,
            dram_bytes: transactions * self.line,
            useful_bytes: bytes,
        }
    }

    /// Transaction (line) size in bytes.
    pub fn line(&self) -> usize {
        self.line
    }

    /// Expected DRAM traffic for `accesses` random entry fetches (each
    /// `entry_bytes`) out of a working set of `working_set_bytes`, given an
    /// L1 of `l1_bytes`.
    ///
    /// Models the paper's VQ-attn-GC pathology: random sub-line accesses
    /// whose working set exceeds L1 capture almost no temporal locality
    /// (they measured a 12.45 % hit rate). The hit-rate estimate is simply
    /// the resident fraction of the working set, capped below 1 so cold
    /// misses always cost something.
    pub fn random_cached_access(
        &self,
        accesses: usize,
        entry_bytes: usize,
        working_set_bytes: usize,
        l1_bytes: usize,
    ) -> GmemAccess {
        if accesses == 0 {
            return GmemAccess {
                transactions: 0,
                dram_bytes: 0,
                useful_bytes: 0,
            };
        }
        let hit_rate = if working_set_bytes == 0 {
            0.95
        } else {
            (l1_bytes as f64 / working_set_bytes as f64).min(0.95)
        };
        // Every access asks for entry_bytes but a miss drags a full line.
        let lines_per_access = entry_bytes.div_ceil(self.line).max(1);
        let misses = accesses as f64 * (1.0 - hit_rate);
        let transactions = (misses * lines_per_access as f64).ceil() as usize;
        GmemAccess {
            transactions,
            dram_bytes: transactions * self.line,
            useful_bytes: accesses * entry_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> GlobalMemoryModel {
        GlobalMemoryModel::with_line(128)
    }

    #[test]
    fn coalesced_fp32_warp_is_one_transaction() {
        let addrs: [usize; 32] = std::array::from_fn(|i| i * 4);
        let a = model().warp_access_full(&addrs, 4);
        assert_eq!(a.transactions, 1);
        assert!((a.efficiency() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn scattered_access_touches_many_lines() {
        let addrs: [usize; 32] = std::array::from_fn(|i| i * 4096);
        let a = model().warp_access_full(&addrs, 4);
        assert_eq!(a.transactions, 32);
        assert!(a.efficiency() < 0.05);
    }

    #[test]
    fn straddling_elements_count_both_lines() {
        let addrs = [Some(124usize)]; // 8-byte element crossing the 128 line
        let a = model().warp_access(&addrs, 8);
        assert_eq!(a.transactions, 2);
    }

    #[test]
    fn contiguous_rounds_up() {
        let a = model().contiguous_bytes(300);
        assert_eq!(a.transactions, 3);
        assert_eq!(a.dram_bytes, 384);
        assert_eq!(a.useful_bytes, 300);
    }

    #[test]
    fn random_codebook_fetch_has_low_efficiency() {
        // 256 entries × 8 bytes scattered over 2 KB: a warp of random
        // fetches touches many distinct lines.
        let addrs: [usize; 32] = std::array::from_fn(|i| ((i * 37 + 5) % 256) * 8);
        let a = model().warp_access_full(&addrs, 8);
        assert!(a.efficiency() < 0.5, "efficiency {}", a.efficiency());
    }
}
