//! Device specifications.
//!
//! Two presets match the paper's testbeds: the NVIDIA GeForce RTX 4090
//! (AD102, the primary device) and the Tesla A40 (GA102, the
//! bandwidth-constrained device of §VII-E, "67 % of the memory bandwidth of
//! the RTX 4090").

use crate::occupancy::{BlockResources, Occupancy};
use serde::{Deserialize, Serialize};

/// Static description of a CUDA-like GPU.
///
/// Only parameters the performance model consumes are included; everything
/// is public-datasheet material.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Marketing name, for reports.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub num_sms: usize,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: usize,
    /// Maximum resident thread blocks per SM.
    pub max_blocks_per_sm: usize,
    /// 32-bit registers per SM.
    pub regs_per_sm: usize,
    /// Register allocation granularity per warp (registers are handed out in
    /// chunks; 256/warp on recent parts).
    pub reg_alloc_granularity: usize,
    /// Usable shared memory per SM, bytes.
    pub smem_per_sm: usize,
    /// Maximum shared memory a single block may request, bytes.
    pub max_smem_per_block: usize,
    /// Shared-memory banks (32 on every NVIDIA part since Kepler).
    pub smem_banks: usize,
    /// Bank word width in bytes (4).
    pub bank_width: usize,
    /// Global-memory transaction size in bytes (L1 line, 128).
    pub gmem_transaction_bytes: usize,
    /// L1 data-cache capacity per SM, bytes (shares silicon with shared
    /// memory; used to model the paper's 12.45 % hit rate for
    /// global-resident codebooks).
    pub l1_bytes: usize,
    /// Peak DRAM bandwidth, GB/s.
    pub dram_bw_gbps: f64,
    /// Core clock, GHz.
    pub clock_ghz: f64,
    /// FP32/FP16 FMA lanes per SM (each does 2 FLOPs/cycle).
    pub fma_lanes_per_sm: usize,
    /// Throughput multiplier for tensor-core (`mma`) FLOPs relative to the
    /// FMA lanes (≈4× for FP16 on Ada/Ampere).
    pub mma_multiplier: f64,
    /// Integer/logic lanes per SM (index unpack, address math).
    pub int_lanes_per_sm: usize,
    /// Shared-memory bytes a warp can move per cycle per SM
    /// (32 banks × 4 B).
    pub smem_bytes_per_cycle: usize,
    /// Warps needed per SM to hide compute-pipeline latency.
    pub warps_to_hide_compute: f64,
    /// Warps needed per SM to saturate DRAM bandwidth.
    pub warps_to_hide_memory: f64,
    /// Fixed kernel-launch overhead, microseconds.
    pub launch_overhead_us: f64,
}

impl GpuSpec {
    /// NVIDIA GeForce RTX 4090 (AD102) — the paper's primary device.
    pub fn rtx4090() -> Self {
        GpuSpec {
            name: "NVIDIA GeForce RTX 4090".to_string(),
            num_sms: 128,
            max_threads_per_sm: 1536,
            max_blocks_per_sm: 24,
            regs_per_sm: 65_536,
            reg_alloc_granularity: 256,
            smem_per_sm: 100 * 1024,
            max_smem_per_block: 99 * 1024,
            smem_banks: 32,
            bank_width: 4,
            gmem_transaction_bytes: 128,
            l1_bytes: 128 * 1024,
            dram_bw_gbps: 1008.0,
            clock_ghz: 2.52,
            fma_lanes_per_sm: 128,
            mma_multiplier: 4.0,
            int_lanes_per_sm: 64,
            smem_bytes_per_cycle: 128,
            warps_to_hide_compute: 8.0,
            warps_to_hide_memory: 12.0,
            launch_overhead_us: 4.0,
        }
    }

    /// NVIDIA Tesla A40 (GA102) — the bandwidth-constrained device of
    /// §VII-E. Its DRAM bandwidth is 696 GB/s ≈ 67 % of the 4090's.
    pub fn a40() -> Self {
        GpuSpec {
            name: "NVIDIA Tesla A40".to_string(),
            num_sms: 84,
            max_threads_per_sm: 1536,
            max_blocks_per_sm: 16,
            regs_per_sm: 65_536,
            reg_alloc_granularity: 256,
            smem_per_sm: 100 * 1024,
            max_smem_per_block: 99 * 1024,
            smem_banks: 32,
            bank_width: 4,
            gmem_transaction_bytes: 128,
            l1_bytes: 128 * 1024,
            dram_bw_gbps: 696.0,
            clock_ghz: 1.74,
            fma_lanes_per_sm: 128,
            mma_multiplier: 4.0,
            int_lanes_per_sm: 64,
            smem_bytes_per_cycle: 128,
            warps_to_hide_compute: 8.0,
            warps_to_hide_memory: 12.0,
            launch_overhead_us: 4.0,
        }
    }

    /// Peak FP16/FP32 throughput in FLOP/s (`SMs × lanes × 2 × clock`).
    pub fn peak_flops(&self) -> f64 {
        self.num_sms as f64 * self.fma_lanes_per_sm as f64 * 2.0 * self.clock_ghz * 1e9
    }

    /// Peak DRAM bandwidth in bytes/second.
    pub fn peak_bw_bytes(&self) -> f64 {
        self.dram_bw_gbps * 1e9
    }

    /// Occupancy analysis for a block shape (convenience for
    /// [`Occupancy::analyze`]).
    pub fn occupancy(&self, block: &BlockResources) -> Occupancy {
        Occupancy::analyze(self, block)
    }
}

impl Default for GpuSpec {
    fn default() -> Self {
        GpuSpec::rtx4090()
    }
}

impl std::fmt::Display for GpuSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ({} SMs, {:.0} GB/s, {:.2} GHz)",
            self.name, self.num_sms, self.dram_bw_gbps, self.clock_ghz
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rtx4090_peak_flops_is_about_82_tflops() {
        let g = GpuSpec::rtx4090();
        let tflops = g.peak_flops() / 1e12;
        assert!((tflops - 82.6).abs() < 1.0, "got {tflops}");
    }

    #[test]
    fn a40_bandwidth_ratio_matches_paper() {
        let a40 = GpuSpec::a40();
        let g4090 = GpuSpec::rtx4090();
        let ratio = a40.dram_bw_gbps / g4090.dram_bw_gbps;
        // Paper §VII-E: A40 provides 67 % of the 4090's bandwidth.
        assert!((ratio - 0.67).abs() < 0.03, "got {ratio}");
    }

    #[test]
    fn display_mentions_name() {
        assert!(GpuSpec::a40().to_string().contains("A40"));
    }
}
