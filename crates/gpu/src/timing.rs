//! Roofline-style latency model.
//!
//! Takes the [`PerfCounters`] a kernel tallied for its whole grid plus its
//! [`LaunchConfig`], and produces a latency estimate as the maximum of four
//! bottleneck components:
//!
//! * **DRAM**: total DRAM bytes over the *effective* bandwidth, which
//!   degrades when too few warps are resident to keep the memory system
//!   busy (this is how the paper's "insufficient thread blocks for Llama-7B
//!   1k single-batch" observation shows up).
//! * **FMA / tensor-core compute**: FLOPs over effective throughput.
//! * **Integer pipeline**: index unpacking and address math — the cost that
//!   makes AQLM's misaligned 12-bit format "tolerant to redundant
//!   computation" (§VII-C).
//! * **Shared memory**: serialized bank cycles (conflicts included) plus
//!   shuffle instructions, which share the SM's load/store + MIO pipes.
//!
//! All SM-side components scale with the number of SMs actually covered by
//! the grid and with a latency-hiding factor derived from resident warps,
//! so occupancy loss (the codebook cache's central trade-off) directly
//! slows the kernel down.

use crate::counters::PerfCounters;
use crate::device::GpuSpec;
use crate::launch::LaunchConfig;
use crate::occupancy::Occupancy;
use serde::{Deserialize, Serialize};

/// Which component bound the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Bound {
    /// DRAM bandwidth.
    Dram,
    /// FMA / tensor-core throughput.
    Compute,
    /// Integer pipeline (unpack/decode).
    Int,
    /// Shared-memory banks + shuffles.
    SharedMemory,
}

/// Latency estimate with its per-component breakdown (microseconds).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyBreakdown {
    /// DRAM component.
    pub dram_us: f64,
    /// FMA + tensor-core component.
    pub compute_us: f64,
    /// Integer-pipeline component.
    pub int_us: f64,
    /// Shared-memory + shuffle component.
    pub smem_us: f64,
    /// Fixed launch overhead.
    pub launch_us: f64,
    /// Total estimate (max of components + launch overhead).
    pub total_us: f64,
    /// The binding component.
    pub bound: Bound,
    /// Occupancy analysis of the launch.
    pub occupancy: Occupancy,
    /// Model of the paper's "SM utilization" counter: fraction of the
    /// device's issue capacity the launch can actually use.
    pub sm_utilization: f64,
}

/// The latency model for one device.
#[derive(Debug, Clone)]
pub struct TimingModel {
    gpu: GpuSpec,
}

impl TimingModel {
    /// Creates a timing model for `gpu`.
    pub fn new(gpu: GpuSpec) -> Self {
        TimingModel { gpu }
    }

    /// The device this model targets.
    pub fn gpu(&self) -> &GpuSpec {
        &self.gpu
    }

    /// Estimates the latency of a kernel launch that tallied `counters`
    /// across its whole grid.
    ///
    /// Returns an "infinite" breakdown (`f64::INFINITY`) if the block shape
    /// cannot run at all (zero occupancy) — callers treat that as an
    /// unlaunchable configuration.
    pub fn latency(&self, launch: &LaunchConfig, counters: &PerfCounters) -> LatencyBreakdown {
        let g = &self.gpu;
        let occ = Occupancy::analyze(g, &launch.block);
        if occ.blocks_per_sm == 0 || launch.grid_blocks == 0 {
            return LatencyBreakdown {
                dram_us: f64::INFINITY,
                compute_us: f64::INFINITY,
                int_us: f64::INFINITY,
                smem_us: f64::INFINITY,
                launch_us: g.launch_overhead_us,
                total_us: f64::INFINITY,
                bound: Bound::Compute,
                occupancy: occ,
                sm_utilization: 0.0,
            };
        }

        let sms_used = g.num_sms.min(launch.grid_blocks) as f64;
        let resident_warps_per_sm = {
            // Resident warps cannot exceed what the grid supplies.
            let supplied = launch.total_warps() as f64 / sms_used;
            (occ.warps_per_sm as f64).min(supplied).max(1.0)
        };

        // Latency-hiding factors: fraction of peak throughput reachable
        // with this many resident warps.
        let hide_compute = (resident_warps_per_sm / g.warps_to_hide_compute).min(1.0);
        let total_resident = resident_warps_per_sm * sms_used;
        let bw_needed = g.warps_to_hide_memory * g.num_sms as f64;
        let hide_mem = (total_resident / bw_needed).clamp(0.05, 1.0);

        let clock = g.clock_ghz * 1e9;

        // DRAM component.
        let dram_s = counters.dram_bytes() / (g.peak_bw_bytes() * hide_mem);

        // Compute component: FMA lanes + tensor cores (which run
        // mma_multiplier× faster and overlap poorly enough that we just add
        // their occupations).
        let fma_peak = sms_used * g.fma_lanes_per_sm as f64 * 2.0 * clock * hide_compute;
        let mma_peak = fma_peak * g.mma_multiplier;
        let compute_s = counters.flops / fma_peak + counters.tensor_flops / mma_peak;

        // Integer pipeline.
        let int_peak = sms_used * g.int_lanes_per_sm as f64 * clock * hide_compute;
        let int_s = counters.int_ops / int_peak;

        // Shared memory: one warp transaction per cycle per SM; conflicts
        // are already folded into smem_cycles. Shuffles share the pipe.
        let smem_peak_cycles = sms_used * clock * hide_compute;
        let smem_s = (counters.smem_cycles + counters.shuffles) / smem_peak_cycles;

        let dram_us = dram_s * 1e6;
        let compute_us = compute_s * 1e6;
        let int_us = int_s * 1e6;
        let smem_us = smem_s * 1e6;

        let (bound, max_us) = [
            (Bound::Dram, dram_us),
            (Bound::Compute, compute_us),
            (Bound::Int, int_us),
            (Bound::SharedMemory, smem_us),
        ]
        .into_iter()
        .fold(
            (Bound::Dram, 0.0f64),
            |acc, x| if x.1 > acc.1 { x } else { acc },
        );

        let sm_utilization = (sms_used / g.num_sms as f64) * hide_compute;

        LatencyBreakdown {
            dram_us,
            compute_us,
            int_us,
            smem_us,
            launch_us: g.launch_overhead_us,
            total_us: max_us + g.launch_overhead_us,
            bound,
            occupancy: occ,
            sm_utilization,
        }
    }
}

impl std::fmt::Display for LatencyBreakdown {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.1} us ({:?}-bound; dram {:.1}, compute {:.1}, int {:.1}, smem {:.1})",
            self.total_us, self.bound, self.dram_us, self.compute_us, self.int_us, self.smem_us
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::occupancy::BlockResources;

    fn model() -> TimingModel {
        TimingModel::new(GpuSpec::rtx4090())
    }

    fn big_launch() -> LaunchConfig {
        LaunchConfig::new(1024, BlockResources::new(256, 32, 16 * 1024))
    }

    #[test]
    fn pure_streaming_kernel_hits_peak_bandwidth() {
        // 1 GB of DRAM traffic with a saturating grid → ≈ 1 GB / 1008 GB/s.
        let counters = PerfCounters {
            dram_read_bytes: 1e9,
            ..Default::default()
        };
        let lat = model().latency(&big_launch(), &counters);
        assert_eq!(lat.bound, Bound::Dram);
        let expect_us = 1e9 / (1008.0 * 1e9) * 1e6;
        assert!((lat.dram_us - expect_us).abs() / expect_us < 0.05);
    }

    #[test]
    fn small_grid_cannot_saturate_bandwidth() {
        let counters = PerfCounters {
            dram_read_bytes: 1e8,
            ..Default::default()
        };
        let small = LaunchConfig::new(16, BlockResources::new(128, 32, 0));
        let big = model().latency(&big_launch(), &counters);
        let lat = model().latency(&small, &counters);
        assert!(lat.dram_us > 3.0 * big.dram_us * (1e8 / 1e9) / (1e8 / 1e9));
    }

    #[test]
    fn compute_bound_gemm_lands_near_peak_flops() {
        // 137 GFLOP of tensor-core work ≈ 4096³ GeMM at mma rate.
        let counters = PerfCounters {
            tensor_flops: 2.0 * 4096f64.powi(3),
            ..Default::default()
        };
        let lat = model().latency(&big_launch(), &counters);
        assert_eq!(lat.bound, Bound::Compute);
        // 137.4e9 / (82.6e12 × 4) ≈ 416 µs.
        assert!(
            lat.compute_us > 300.0 && lat.compute_us < 550.0,
            "{}",
            lat.compute_us
        );
    }

    #[test]
    fn bank_conflicts_slow_the_smem_component() {
        let clean = PerfCounters {
            smem_cycles: 1e9,
            ..Default::default()
        };
        let conflicted = PerfCounters {
            smem_cycles: 4e9,
            bank_conflict_cycles: 3e9,
            ..Default::default()
        };
        let m = model();
        let a = m.latency(&big_launch(), &clean);
        let b = m.latency(&big_launch(), &conflicted);
        assert!(b.smem_us > 3.5 * a.smem_us);
    }

    #[test]
    fn occupancy_loss_raises_latency() {
        // Same work, but the fat block keeps only one block per SM.
        let counters = PerfCounters {
            flops: 1e12,
            ..Default::default()
        };
        let m = model();
        let lean = m.latency(
            &LaunchConfig::new(1024, BlockResources::new(128, 32, 8 * 1024)),
            &counters,
        );
        let fat = m.latency(
            &LaunchConfig::new(1024, BlockResources::new(128, 32, 90 * 1024)),
            &counters,
        );
        assert!(
            fat.total_us > lean.total_us,
            "fat {} lean {}",
            fat.total_us,
            lean.total_us
        );
        assert!(fat.sm_utilization < lean.sm_utilization);
    }

    #[test]
    fn unlaunchable_block_is_infinite() {
        let counters = PerfCounters::default();
        let lat = model().latency(
            &LaunchConfig::new(1, BlockResources::new(4096, 32, 0)),
            &counters,
        );
        assert!(lat.total_us.is_infinite());
    }

    #[test]
    fn launch_overhead_is_floor() {
        let lat = model().latency(&big_launch(), &PerfCounters::default());
        assert!((lat.total_us - 4.0).abs() < 1e-9);
    }
}
