//! Shared-memory bank-conflict model.
//!
//! NVIDIA shared memory is interleaved across 32 banks of 4-byte words. A
//! warp's access completes in one cycle only if no two threads touch
//! *different words in the same bank* (same-word accesses broadcast). VQ
//! dequantization indexes codebook entries essentially at random, and an
//! entry of `vector_size` FP16 elements spans multiple words — both effects
//! the paper calls out in §III ("the number of codebook entries vastly
//! exceeds the number of shared memory banks … a single codebook entry can
//! occupy multiple banks").
//!
//! [`SharedMemoryModel::warp_access`] returns the serialized cycle count for
//! one warp access pattern; the excess over the conflict-free count is what
//! the paper's "bank conflict" counter reports.

use crate::device::GpuSpec;

/// Model of one SM's shared memory banking.
#[derive(Debug, Clone)]
pub struct SharedMemoryModel {
    banks: usize,
    bank_width: usize,
}

/// Outcome of a single warp-wide shared-memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WarpAccess {
    /// Cycles the access serializes into (1 = conflict-free).
    pub cycles: usize,
    /// Extra cycles beyond conflict-free (the bank-conflict counter).
    pub conflict_cycles: usize,
    /// Bytes moved.
    pub bytes: usize,
}

impl SharedMemoryModel {
    /// Creates a bank model from a device spec.
    pub fn new(gpu: &GpuSpec) -> Self {
        SharedMemoryModel {
            banks: gpu.smem_banks,
            bank_width: gpu.bank_width,
        }
    }

    /// Creates a bank model directly (useful in tests).
    pub fn with_banks(banks: usize, bank_width: usize) -> Self {
        assert!(banks > 0 && bank_width > 0);
        SharedMemoryModel { banks, bank_width }
    }

    /// Simulates one warp access where each active lane reads/writes
    /// `elem_bytes` bytes starting at its byte address in `addrs`
    /// (`None` = inactive lane).
    ///
    /// Accesses wider than one bank word are issued as consecutive word
    /// accesses (this is how a `float4`/multi-word entry fetch behaves and
    /// is what makes large VQ entries conflict-prone).
    pub fn warp_access(&self, addrs: &[Option<usize>], elem_bytes: usize) -> WarpAccess {
        assert!(elem_bytes > 0, "element size must be positive");
        let words_per_elem = elem_bytes.div_ceil(self.bank_width);
        let mut total_cycles = 0usize;
        let mut bytes = 0usize;

        // Each word-offset within the element is a separate warp transaction.
        for w in 0..words_per_elem {
            // bank -> set of distinct word indices requested this transaction
            let mut per_bank: Vec<Vec<usize>> = vec![Vec::new(); self.banks];
            let mut any = false;
            for addr in addrs.iter().flatten() {
                let word = addr / self.bank_width + w;
                let bank = word % self.banks;
                if !per_bank[bank].contains(&word) {
                    per_bank[bank].push(word);
                }
                any = true;
                bytes += self.bank_width.min(elem_bytes - w * self.bank_width);
            }
            if any {
                let cycles = per_bank.iter().map(Vec::len).max().unwrap_or(0).max(1);
                total_cycles += cycles;
            }
        }

        let ideal = words_per_elem;
        WarpAccess {
            cycles: total_cycles,
            conflict_cycles: total_cycles.saturating_sub(ideal),
            bytes,
        }
    }

    /// Convenience: all 32 lanes active.
    pub fn warp_access_full(&self, addrs: &[usize; 32], elem_bytes: usize) -> WarpAccess {
        let opt: Vec<Option<usize>> = addrs.iter().map(|&a| Some(a)).collect();
        self.warp_access(&opt, elem_bytes)
    }

    /// Number of banks in the model.
    pub fn banks(&self) -> usize {
        self.banks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> SharedMemoryModel {
        SharedMemoryModel::with_banks(32, 4)
    }

    #[test]
    fn sequential_words_are_conflict_free() {
        let addrs: [usize; 32] = std::array::from_fn(|i| i * 4);
        let a = model().warp_access_full(&addrs, 4);
        assert_eq!(a.cycles, 1);
        assert_eq!(a.conflict_cycles, 0);
        assert_eq!(a.bytes, 32 * 4);
    }

    #[test]
    fn same_word_broadcasts() {
        let addrs: [usize; 32] = [0; 32];
        let a = model().warp_access_full(&addrs, 4);
        assert_eq!(a.cycles, 1, "same-word access broadcasts");
    }

    #[test]
    fn stride_two_gives_two_way_conflict() {
        // Stride of 2 words: lanes 0 and 16 hit bank 0 with different words.
        let addrs: [usize; 32] = std::array::from_fn(|i| i * 8);
        let a = model().warp_access_full(&addrs, 4);
        assert_eq!(a.cycles, 2);
        assert_eq!(a.conflict_cycles, 1);
    }

    #[test]
    fn stride_32_serializes_fully() {
        // All lanes hit bank 0 with 32 distinct words → 32-way conflict.
        let addrs: [usize; 32] = std::array::from_fn(|i| i * 32 * 4);
        let a = model().warp_access_full(&addrs, 4);
        assert_eq!(a.cycles, 32);
        assert_eq!(a.conflict_cycles, 31);
    }

    #[test]
    fn wide_elements_issue_multiple_transactions() {
        // 8-byte entries at consecutive 8-byte addresses: two word
        // transactions, each 2-way-conflicted... actually lanes i at word
        // 2i → banks 0,2,4,… lane 16 wraps to bank 0 with a different word.
        let addrs: [usize; 32] = std::array::from_fn(|i| i * 8);
        let a = model().warp_access_full(&addrs, 8);
        assert_eq!(a.bytes, 32 * 8);
        // Two transactions minimum, each 2-way serialized → 4 cycles.
        assert_eq!(a.cycles, 4);
        assert_eq!(a.conflict_cycles, 2);
    }

    #[test]
    fn random_codebook_access_conflicts_heavily() {
        // Deterministic pseudo-random entry ids over 256 entries of 8 bytes:
        // expect noticeably more than the ideal 2 cycles.
        let addrs: [usize; 32] = std::array::from_fn(|i| ((i * 97 + 13) % 256) * 8);
        let a = model().warp_access_full(&addrs, 8);
        assert!(a.conflict_cycles > 0, "random wide access should conflict");
    }

    #[test]
    fn inactive_lanes_do_not_conflict() {
        let mut addrs: Vec<Option<usize>> = vec![None; 32];
        addrs[0] = Some(0);
        addrs[1] = Some(32 * 4); // same bank, different word, but only 2 lanes
        let a = model().warp_access(&addrs, 4);
        assert_eq!(a.cycles, 2);
        let b = model().warp_access(&vec![None; 32], 4);
        assert_eq!(b.cycles, 0);
        assert_eq!(b.bytes, 0);
    }
}
