//! Warp abstraction with functional `shfl_xor` register exchange.
//!
//! The paper's register-level fusion (§VI-B) rests on the CUDA warp-shuffle
//! intrinsic: `shfl_xor(reg, offset)` hands each lane the value of the lane
//! whose id differs in the bits of `offset`, without touching shared memory.
//! We model a warp as 32 lanes each holding a small register array, and we
//! implement the exchange *functionally* so fusion correctness is testable
//! (the shuffled registers must end up exactly in the layout `mma` needs).

use crate::{GpuError, Result};

/// Lanes per warp on every NVIDIA GPU this model targets.
pub const WARP_SIZE: usize = 32;

/// A warp: 32 lanes × `regs_per_lane` registers of `f32`.
///
/// ```
/// use vqllm_gpu::Warp;
/// let mut w = Warp::new(2);
/// w.set(3, 0, 42.0);
/// assert_eq!(w.get(3, 0), 42.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Warp {
    regs: Vec<Vec<f32>>, // [lane][reg]
    shuffle_count: usize,
}

impl Warp {
    /// Creates a warp with `regs_per_lane` zeroed registers per lane.
    pub fn new(regs_per_lane: usize) -> Self {
        Warp {
            regs: vec![vec![0.0; regs_per_lane]; WARP_SIZE],
            shuffle_count: 0,
        }
    }

    /// Number of registers per lane.
    pub fn regs_per_lane(&self) -> usize {
        self.regs.first().map_or(0, Vec::len)
    }

    /// Register `r` of lane `lane`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn get(&self, lane: usize, r: usize) -> f32 {
        self.regs[lane][r]
    }

    /// Sets register `r` of lane `lane`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn set(&mut self, lane: usize, r: usize, v: f32) {
        self.regs[lane][r] = v;
    }

    /// Loads one value per lane into register `r`.
    ///
    /// # Errors
    ///
    /// Returns [`GpuError::InvalidParameter`] if `vals` is not
    /// [`WARP_SIZE`] long or `r` is out of range.
    pub fn load_lanes(&mut self, r: usize, vals: &[f32]) -> Result<()> {
        if vals.len() != WARP_SIZE {
            return Err(GpuError::InvalidParameter {
                what: "load_lanes values",
                value: vals.len(),
            });
        }
        if r >= self.regs_per_lane() {
            return Err(GpuError::InvalidParameter {
                what: "register index",
                value: r,
            });
        }
        for (lane, &v) in vals.iter().enumerate() {
            self.regs[lane][r] = v;
        }
        Ok(())
    }

    /// `shfl_xor`: every lane's register `r` is replaced by the value of the
    /// same register in lane `lane ^ mask`. This matches CUDA
    /// `__shfl_xor_sync` applied warp-wide, and is the primitive Alg. 1's
    /// register fusion is compiled to.
    ///
    /// # Errors
    ///
    /// Returns [`GpuError::InvalidParameter`] if `mask` is zero or ≥ 32, or
    /// `r` is out of range.
    pub fn shfl_xor(&mut self, r: usize, mask: usize) -> Result<()> {
        if mask == 0 || mask >= WARP_SIZE {
            return Err(GpuError::InvalidParameter {
                what: "shuffle mask",
                value: mask,
            });
        }
        if r >= self.regs_per_lane() {
            return Err(GpuError::InvalidParameter {
                what: "register index",
                value: r,
            });
        }
        let snapshot: Vec<f32> = (0..WARP_SIZE).map(|l| self.regs[l][r]).collect();
        for lane in 0..WARP_SIZE {
            self.regs[lane][r] = snapshot[lane ^ mask];
        }
        self.shuffle_count += 1;
        Ok(())
    }

    /// Paper-style in-place exchange: for each lane `tid`, register index
    /// `tid ^ mask` (modulo the register count) participates in a
    /// `shfl_xor(mask)`. This is exactly the access pattern of Alg. 1 line
    /// 14: `data[tid^off] ← shfl_xor(data[tid^off], off)`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Warp::shfl_xor`].
    pub fn shfl_xor_indexed(&mut self, mask: usize) -> Result<()> {
        if mask == 0 || mask >= WARP_SIZE {
            return Err(GpuError::InvalidParameter {
                what: "shuffle mask",
                value: mask,
            });
        }
        let n = self.regs_per_lane();
        if n == 0 {
            return Err(GpuError::InvalidParameter {
                what: "register count",
                value: 0,
            });
        }
        let snapshot = self.regs.clone();
        for lane in 0..WARP_SIZE {
            let idx = (lane ^ mask) % n;
            let src_lane = lane ^ mask;
            let src_idx = (src_lane ^ mask) % n; // == lane % n
            self.regs[lane][idx] = snapshot[src_lane][src_idx];
        }
        self.shuffle_count += 1;
        Ok(())
    }

    /// Number of shuffle instructions issued so far (feeds the timing
    /// model's shuffle cost and the paper's `#Shuffle` factor, Tbl. V).
    pub fn shuffles_issued(&self) -> usize {
        self.shuffle_count
    }

    /// Flat copy of all registers in `[lane][reg]` order.
    pub fn snapshot(&self) -> Vec<f32> {
        self.regs.iter().flatten().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shfl_xor_swaps_pairs() {
        let mut w = Warp::new(1);
        let vals: Vec<f32> = (0..32).map(|i| i as f32).collect();
        w.load_lanes(0, &vals).unwrap();
        w.shfl_xor(0, 1).unwrap();
        for lane in 0..WARP_SIZE {
            assert_eq!(w.get(lane, 0), (lane ^ 1) as f32);
        }
    }

    #[test]
    fn shfl_xor_is_involution() {
        let mut w = Warp::new(1);
        let vals: Vec<f32> = (0..32).map(|i| (i * 3) as f32).collect();
        w.load_lanes(0, &vals).unwrap();
        let before = w.snapshot();
        w.shfl_xor(0, 5).unwrap();
        w.shfl_xor(0, 5).unwrap();
        assert_eq!(w.snapshot(), before);
    }

    #[test]
    fn shuffle_counts_accumulate() {
        let mut w = Warp::new(2);
        w.shfl_xor(0, 1).unwrap();
        w.shfl_xor(1, 2).unwrap();
        w.shfl_xor_indexed(3).unwrap();
        assert_eq!(w.shuffles_issued(), 3);
    }

    #[test]
    fn invalid_masks_are_rejected() {
        let mut w = Warp::new(1);
        assert!(w.shfl_xor(0, 0).is_err());
        assert!(w.shfl_xor(0, 32).is_err());
        assert!(w.shfl_xor(1, 1).is_err(), "register out of range");
    }

    #[test]
    fn indexed_exchange_mirrors_paper_example() {
        // Paper Fig. 12: 4 registers/lane, mini-warps of 4 lanes. After the
        // three exchanges (masks 1, 2, 3) lane t's register array holds
        // element j of the data originally dequantized by lane (t & !3) | j
        // — i.e. data is transposed within every 4-lane mini-warp.
        let mut w = Warp::new(4);
        for lane in 0..WARP_SIZE {
            for r in 0..4 {
                w.set(lane, r, (lane * 10 + r) as f32);
            }
        }
        for mask in 1..4 {
            w.shfl_xor_indexed(mask).unwrap();
        }
        for lane in 0..WARP_SIZE {
            let base = lane & !3;
            for r in 0..4 {
                let owner = base + r; // lane that originally dequantized it
                let within = lane & 3; // which of the owner's elements we get
                assert_eq!(
                    w.get(lane, r),
                    (owner * 10 + within) as f32,
                    "lane {lane} reg {r}"
                );
            }
        }
    }
}
