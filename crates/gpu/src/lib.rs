//! GPU performance-model substrate for the VQ-LLM reproduction.
//!
//! The paper evaluates CUDA kernels on an RTX 4090 and a Tesla A40. This
//! crate is the documented hardware substitution (DESIGN.md §1/§5): an
//! architectural performance model that reproduces the first-order effects
//! the paper's analysis is built on —
//!
//! * **occupancy**: how many thread blocks fit on an SM given their thread /
//!   register / shared-memory appetite, and the *slack* left before the next
//!   occupancy cliff (paper Fig. 10);
//! * **shared-memory banking**: 32 banks × 4 B, conflict serialization for a
//!   warp's access pattern (the paper's bank-conflict counter, Fig. 4);
//! * **global-memory coalescing**: 128 B transactions per warp access
//!   (duplicated codebook traffic, Fig. 5);
//! * **warp shuffle**: functional `shfl_xor` register exchange plus its cost
//!   relative to a shared-memory round-trip (paper §VI-B: smem ≈ 5× the cost
//!   of register access + shuffle);
//! * **timing**: a roofline-style latency estimate from the tallied
//!   [`PerfCounters`], calibrated to RTX 4090 / A40 magnitudes.
//!
//! Kernels in `vqllm-kernels` execute *functionally* on the host while
//! recording their memory behaviour here; latency estimates come out of
//! [`TimingModel::latency`].
//!
//! # Example
//!
//! ```
//! use vqllm_gpu::{BlockResources, GpuSpec};
//!
//! let gpu = GpuSpec::rtx4090();
//! let block = BlockResources::new(256, 40, 16 * 1024);
//! let occ = gpu.occupancy(&block);
//! assert!(occ.blocks_per_sm >= 2);
//! // Fig. 10: how much more shared memory could each block take for free?
//! assert!(occ.smem_slack_bytes > 0);
//! ```

pub mod counters;
pub mod device;
pub mod gmem;
pub mod launch;
pub mod occupancy;
pub mod smem;
pub mod timing;
pub mod warp;

pub use counters::PerfCounters;
pub use device::GpuSpec;
pub use gmem::GlobalMemoryModel;
pub use launch::LaunchConfig;
pub use occupancy::{BlockResources, Occupancy};
pub use smem::SharedMemoryModel;
pub use timing::{LatencyBreakdown, TimingModel};
pub use warp::{Warp, WARP_SIZE};

/// Error type for GPU-model configuration problems.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GpuError {
    /// A launch or block configuration exceeds a hardware limit.
    ResourceExceeded {
        /// The exceeded resource.
        what: &'static str,
        /// Requested amount.
        requested: usize,
        /// Hardware limit.
        limit: usize,
    },
    /// A parameter was zero or otherwise invalid.
    InvalidParameter {
        /// The offending parameter.
        what: &'static str,
        /// Its value.
        value: usize,
    },
}

impl std::fmt::Display for GpuError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GpuError::ResourceExceeded {
                what,
                requested,
                limit,
            } => write!(f, "{what} exceeded: requested {requested}, limit {limit}"),
            GpuError::InvalidParameter { what, value } => {
                write!(f, "invalid parameter {what}: {value}")
            }
        }
    }
}

impl std::error::Error for GpuError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, GpuError>;
