//! Performance counters.
//!
//! The exact counter set the paper's motivation study reads (Fig. 4):
//! SM utilization, shared-memory usage, shared-memory bank conflicts,
//! global→shared traffic, and shared→register traffic — plus the raw
//! quantities the timing model needs (DRAM bytes, FLOPs, integer ops,
//! shuffles, shared-memory cycles).
//!
//! Counters are plain data: kernels tally them for a representative tile,
//! then [`PerfCounters::scaled`] extrapolates to the full grid.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign};

/// Accumulated activity of one kernel launch (or one tile thereof).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PerfCounters {
    /// Bytes loaded from DRAM (includes over-fetch from poor coalescing).
    pub dram_read_bytes: f64,
    /// Bytes stored to DRAM.
    pub dram_write_bytes: f64,
    /// Subset of DRAM reads that fill shared memory (the paper's
    /// Global→Shared traffic bar).
    pub global_to_shared_bytes: f64,
    /// Bytes moved shared → registers (the paper's Shared→Reg traffic bar).
    pub shared_to_reg_bytes: f64,
    /// Bytes moved registers → shared (layout round-trips).
    pub reg_to_shared_bytes: f64,
    /// Shared-memory access cycles, *including* conflict serialization.
    pub smem_cycles: f64,
    /// Excess shared-memory cycles caused by bank conflicts.
    pub bank_conflict_cycles: f64,
    /// Floating-point operations on the FMA lanes (MAC = 2).
    pub flops: f64,
    /// Floating-point operations issued to tensor cores (`mma`), which run
    /// at `mma_multiplier ×` the FMA-lane rate.
    pub tensor_flops: f64,
    /// Integer/logic operations (index unpacking, address math, predicates).
    pub int_ops: f64,
    /// Warp shuffle instructions.
    pub shuffles: f64,
    /// Global-memory transactions issued.
    pub gmem_transactions: f64,
}

impl PerfCounters {
    /// Zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counters multiplied by `factor` — tile → grid extrapolation.
    pub fn scaled(&self, factor: f64) -> PerfCounters {
        PerfCounters {
            dram_read_bytes: self.dram_read_bytes * factor,
            dram_write_bytes: self.dram_write_bytes * factor,
            global_to_shared_bytes: self.global_to_shared_bytes * factor,
            shared_to_reg_bytes: self.shared_to_reg_bytes * factor,
            reg_to_shared_bytes: self.reg_to_shared_bytes * factor,
            smem_cycles: self.smem_cycles * factor,
            bank_conflict_cycles: self.bank_conflict_cycles * factor,
            flops: self.flops * factor,
            tensor_flops: self.tensor_flops * factor,
            int_ops: self.int_ops * factor,
            shuffles: self.shuffles * factor,
            gmem_transactions: self.gmem_transactions * factor,
        }
    }

    /// Total DRAM traffic (read + write).
    pub fn dram_bytes(&self) -> f64 {
        self.dram_read_bytes + self.dram_write_bytes
    }

    /// Total shared↔register traffic, the quantity the paper's last Fig. 4
    /// bar tracks.
    pub fn shared_reg_traffic(&self) -> f64 {
        self.shared_to_reg_bytes + self.reg_to_shared_bytes
    }
}

impl Add for PerfCounters {
    type Output = PerfCounters;

    fn add(self, rhs: PerfCounters) -> PerfCounters {
        PerfCounters {
            dram_read_bytes: self.dram_read_bytes + rhs.dram_read_bytes,
            dram_write_bytes: self.dram_write_bytes + rhs.dram_write_bytes,
            global_to_shared_bytes: self.global_to_shared_bytes + rhs.global_to_shared_bytes,
            shared_to_reg_bytes: self.shared_to_reg_bytes + rhs.shared_to_reg_bytes,
            reg_to_shared_bytes: self.reg_to_shared_bytes + rhs.reg_to_shared_bytes,
            smem_cycles: self.smem_cycles + rhs.smem_cycles,
            bank_conflict_cycles: self.bank_conflict_cycles + rhs.bank_conflict_cycles,
            flops: self.flops + rhs.flops,
            tensor_flops: self.tensor_flops + rhs.tensor_flops,
            int_ops: self.int_ops + rhs.int_ops,
            shuffles: self.shuffles + rhs.shuffles,
            gmem_transactions: self.gmem_transactions + rhs.gmem_transactions,
        }
    }
}

impl AddAssign for PerfCounters {
    fn add_assign(&mut self, rhs: PerfCounters) {
        *self = *self + rhs;
    }
}

impl std::iter::Sum for PerfCounters {
    fn sum<I: Iterator<Item = PerfCounters>>(iter: I) -> PerfCounters {
        iter.fold(PerfCounters::default(), Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PerfCounters {
        PerfCounters {
            dram_read_bytes: 100.0,
            dram_write_bytes: 10.0,
            global_to_shared_bytes: 60.0,
            shared_to_reg_bytes: 200.0,
            reg_to_shared_bytes: 50.0,
            smem_cycles: 40.0,
            bank_conflict_cycles: 8.0,
            flops: 1000.0,
            tensor_flops: 500.0,
            int_ops: 300.0,
            shuffles: 12.0,
            gmem_transactions: 5.0,
        }
    }

    #[test]
    fn add_is_elementwise() {
        let s = sample() + sample();
        assert_eq!(s.dram_read_bytes, 200.0);
        assert_eq!(s.shuffles, 24.0);
    }

    #[test]
    fn scaled_multiplies_everything() {
        let s = sample().scaled(3.0);
        assert_eq!(s.flops, 3000.0);
        assert_eq!(s.bank_conflict_cycles, 24.0);
    }

    #[test]
    fn derived_totals() {
        let s = sample();
        assert_eq!(s.dram_bytes(), 110.0);
        assert_eq!(s.shared_reg_traffic(), 250.0);
    }

    #[test]
    fn sum_over_iterator() {
        let total: PerfCounters = (0..4).map(|_| sample()).sum();
        assert_eq!(total.flops, 4000.0);
    }
}
