//! A minimal line-protocol client for a running `net_serve` server.
//!
//! ```sh
//! # terminal 1
//! cargo run --release --example net_serve -- 127.0.0.1:8844
//! # terminal 2
//! cargo run --release --example net_client -- 127.0.0.1:8844 [tenant] [gen_tokens]
//! ```
//!
//! Reads the server's `hello` handshake (protocol version + line cap),
//! round-trips a `ping`, submits one streaming request (query width 32 —
//! the demo server's `head_dim`), prints every frame as it arrives, then
//! fetches `stats`.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use vq_llm::net::proto;

const HEAD_DIM: usize = 32;

fn main() -> std::io::Result<()> {
    let mut args = std::env::args().skip(1);
    let addr = args.next().unwrap_or_else(|| "127.0.0.1:8844".into());
    let tenant: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(1);
    let gen_tokens: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);

    let stream = TcpStream::connect(&addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);

    // The handshake and a keepalive round-trip come first; both frames
    // are printed by the read loop below along with everything else.
    writeln!(writer, "{{\"verb\":\"ping\"}}")?;

    let query: Vec<f32> = (0..HEAD_DIM)
        .map(|d| ((tenant as usize * 11 + d) as f32 * 0.17).sin())
        .collect();
    let line = proto::submit_line(0, tenant, &query, 100, gen_tokens, 0, None, true);
    println!("-> {line}");
    writeln!(writer, "{line}")?;

    let mut buf = String::new();
    loop {
        buf.clear();
        reader.read_line(&mut buf)?;
        let frame = buf.trim();
        println!("<- {frame}");
        if frame.contains("\"done\"") || frame.contains("\"rejected\"") {
            break;
        }
    }

    writeln!(writer, "{{\"verb\":\"stats\"}}")?;
    buf.clear();
    reader.read_line(&mut buf)?;
    println!("<- {}", buf.trim());
    Ok(())
}
