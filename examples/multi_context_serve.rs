//! Multi-context serving: one `Engine`, several quantized contexts, one
//! engine-wide scheduler.
//!
//! Two shared contexts of different shapes are registered with the
//! engine; tenants tag their requests with a context handle and the
//! scheduler re-forms the decode batch *per context group* every step —
//! slots and the admission queue are shared across contexts. Requests
//! ride the typed lifecycle (`submit → poll → Finished/Rejected`), and
//! per-context profile feedback replans a context's canonical kernel
//! plans when its measured access distribution drifts.
//!
//! ```sh
//! cargo run --release --example multi_context_serve
//! ```

use vq_llm::tensor::synth;
use vq_llm::{
    DecodeRequest, Engine, ProfileConfig, RequestStatus, ServeConfig, SharedContext, VqAlgorithm,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut engine = Engine::builder()
        .cpu_threads(0) // real host execution, sized to the machine
        .weight_algo(VqAlgorithm::Gptvq2)
        .kv_algo(VqAlgorithm::Cq4)
        .serve_config(ServeConfig::new(4, 16))
        // Aggressive feedback so the demo shows a replan: check every 4
        // steps, replan on any visible profile drift.
        .profile_config(ProfileConfig {
            check_every: 4,
            replan_divergence: 0.01,
        })
        .build()?;

    // Two shared pre-quantized contexts — think two tenant pools over two
    // system prompts, or two beams with different depths.
    let session = engine.session_unbound();
    let quantize = |seq: usize, dim: usize, seed: u64| -> Result<SharedContext, _> {
        SharedContext::new(
            session
                .quantize_kv(&synth::kv_stream(seq, dim, 0.85, seed), seed)
                .unwrap(),
            session
                .quantize_kv(&synth::kv_stream(seq, dim, 0.85, seed + 1), seed + 1)
                .unwrap(),
            session
                .quantize_weights(
                    &synth::correlated_channels(dim, dim, 4, 0.9, seed + 2),
                    seed + 2,
                )
                .unwrap(),
        )
    };
    let ctx_a = engine.register_context(quantize(512, 64, 1)?)?;
    let ctx_b = engine.register_context(quantize(384, 32, 11)?)?;
    println!(
        "registered {} contexts (cold-start planning: {} cache misses)",
        engine.context_count(),
        engine.cache_stats().misses
    );

    // Eight tenants alternating between the contexts, ragged positions,
    // different lengths — more tenants than slots, so batches re-form as
    // requests finish, and most steps hold a *mixed-context* batch.
    let mut tickets = Vec::new();
    for tenant in 0..8u64 {
        let (handle, dim, base, stride) = if tenant % 2 == 0 {
            (ctx_a, 64, 128, 40)
        } else {
            (ctx_b, 32, 64, 24)
        };
        let query: Vec<f32> = (0..dim)
            .map(|d| ((tenant as usize * 11 + d) as f32 * 0.17).sin())
            .collect();
        let req = DecodeRequest::new(
            tenant,
            query,
            base + stride * tenant as usize,
            6 + tenant as usize,
        );
        tickets.push((handle, engine.submit(handle, req)));
    }
    // A malformed submission still yields a handle — it polls as Rejected
    // with a typed reason instead of being silently dropped.
    let bad = engine.submit(ctx_a, DecodeRequest::new(99, vec![0.0; 3], 1, 1));
    println!("bad request -> {:?}", engine.poll(&bad));

    // Single-step the engine and watch the per-context groups.
    while !engine.is_idle() {
        let report = engine.step()?;
        println!(
            "step {:2}: batch {} in {} context group(s) (+{} admitted, -{} finished, {} queued)",
            report.step,
            report.batch,
            report.groups,
            report.admitted.len(),
            report.finished.len(),
            report.queued
        );
    }

    for (_, ticket) in &tickets {
        match engine.poll(ticket) {
            RequestStatus::Finished { tokens } => {
                let out = engine.take_output(ticket).expect("finished");
                println!(
                    "tenant {}: {} tokens (submitted step {}, finished step {})",
                    out.tenant, tokens, out.submitted_step, out.finished_step
                );
            }
            other => println!("unexpected terminal status: {other:?}"),
        }
    }

    let stats = engine.stats();
    println!(
        "\n{} tokens over {} steps — mean batch occupancy {:.2}",
        stats.decoded_tokens,
        stats.steps,
        stats.mean_batch()
    );
    for (name, handle) in [("A", ctx_a), ("B", ctx_b)] {
        let cs = engine.context_stats(handle).expect("registered");
        println!(
            "context {name}: {} steps, {} tokens profiled, {} replan(s), hot entries {}",
            cs.steps, cs.profiled_tokens, cs.replans, cs.num_hot
        );
    }
    println!(
        "plan cache: {} plans, {:.0}% hits",
        engine.plan_cache().len(),
        engine.cache_stats().hit_rate() * 100.0
    );
    Ok(())
}
