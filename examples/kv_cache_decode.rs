//! KV-cache compression scenario: a decode loop over a CQ-compressed KV
//! cache, with per-step attention verified functionally and the end-to-end
//! latency projected through the session's pipeline.
//!
//! ```sh
//! cargo run --release --example kv_cache_decode
//! ```

use vq_llm::llm::kv::KvStorage;
use vq_llm::llm::KvCache;
use vq_llm::tensor::{linalg, metrics, synth};
use vq_llm::{ComputeOp, GpuSpec, QuantScheme, Session, VqAlgorithm};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let session = Session::builder()
        .gpu(GpuSpec::rtx4090())
        .kv_algo(VqAlgorithm::Cq4)
        .build()?;
    let model = session.model();

    // --- Functional check: one head of attention over quantized K/V ---
    let seq = 256;
    let dim = 64;
    let k = synth::kv_stream(seq, dim, 0.85, 1);
    let v = synth::kv_stream(seq, dim, 0.85, 2);
    let kq = session.quantize_kv(&k, 3)?;
    let vq = session.quantize_kv(&v, 4)?;
    let q: Vec<f32> = (0..dim).map(|i| (i as f32 * 0.31).cos()).collect();

    let plan = session.kv_plan(&ComputeOp::attention_decode(1, dim, seq, 1))?;
    let (out, kernel) = session.run_attention_head(&plan, &q, &kq, &vq)?;
    let reference = linalg::attention_decode_ref(
        &q,
        &kq.dequantize()?,
        &vq.dequantize()?,
        1.0 / (dim as f32).sqrt(),
    )?;
    assert!(metrics::allclose(&out, &reference, 1e-4, 1e-4));
    println!(
        "single-head fused attention verified over {seq} tokens ({:.1} us modelled)",
        kernel.us()
    );

    // --- Cache footprint as the sequence grows ---
    let mut cache = KvCache::new(
        model,
        1024,
        16,
        KvStorage::Vq {
            bits_per_element: 4.0,
        },
    );
    let mut quant_overhead = 0.0;
    for _ in 0..256 {
        // Growth is validated against the model's context window.
        quant_overhead += cache.append_token()?;
    }
    println!(
        "KV cache at seq {}: {:.2} GB vs {:.2} GB FP16 ({:.0}% saved); \
         on-the-fly quantization overhead {:.1} us over 256 tokens",
        cache.seq,
        cache.bytes() as f64 / 1e9,
        cache.fp16_bytes() as f64 / 1e9,
        (1.0 - cache.compression()) * 100.0,
        quant_overhead
    );

    // --- End-to-end projection: every scheme through the same session
    //     (and the same plan cache) ---
    for scheme in [
        QuantScheme::Fp16,
        QuantScheme::vq_llm_4bit(),
        QuantScheme::vq_llm_2bit(),
    ] {
        let rep = session.pipeline(scheme).generate(1024, 256, 16);
        println!(
            "{:28} prefill {:7.1} ms + decode {:7.1} ms = {:8.1} ms ({:.2} GB)",
            rep.scheme,
            rep.prefill_ms,
            rep.decode_ms,
            rep.total_ms(),
            rep.memory_gb
        );
    }
    let stats = session.cache_stats();
    println!(
        "\nplan cache after all projections: {} plans, {:.0}% hit rate",
        session.plan_cache().len(),
        stats.hit_rate() * 100.0
    );
    Ok(())
}
