//! KV-cache compression scenario: a decode loop over a CQ-compressed KV
//! cache, with per-step attention verified functionally and the end-to-end
//! latency projected through the pipeline.
//!
//! ```sh
//! cargo run --release --example kv_cache_decode
//! ```

use vq_llm::core::{ComputeOp, KernelPlanner};
use vq_llm::gpu::GpuSpec;
use vq_llm::kernels::vq_kernel;
use vq_llm::llm::kv::KvStorage;
use vq_llm::llm::{KvCache, LlamaConfig, Pipeline, QuantScheme};
use vq_llm::tensor::{linalg, metrics, synth};
use vq_llm::vq::{VqAlgorithm, VqQuantizer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let gpu = GpuSpec::rtx4090();
    let model = LlamaConfig::llama_7b();

    // --- Functional check: one head of attention over quantized K/V ---
    let algo = VqAlgorithm::Cq4;
    let seq = 256;
    let dim = 64;
    let k = synth::kv_stream(seq, dim, 0.85, 1);
    let v = synth::kv_stream(seq, dim, 0.85, 2);
    let kq = VqQuantizer::new(algo.config()).quantize(&k, 3)?;
    let vq = VqQuantizer::new(algo.config()).quantize(&v, 4)?;
    let q: Vec<f32> = (0..dim).map(|i| (i as f32 * 0.31).cos()).collect();

    let plan = KernelPlanner::new(gpu.clone())
        .plan(&algo.config(), &ComputeOp::attention_decode(1, dim, seq, 1))?;
    let (out, kernel) = vq_kernel::run_attention_head(&gpu, &plan, &q, &kq, &vq)?;
    let reference = linalg::attention_decode_ref(
        &q,
        &kq.dequantize()?,
        &vq.dequantize()?,
        1.0 / (dim as f32).sqrt(),
    )?;
    assert!(metrics::allclose(&out, &reference, 1e-4, 1e-4));
    println!(
        "single-head fused attention verified over {seq} tokens ({:.1} us modelled)",
        kernel.us()
    );

    // --- Cache footprint as the sequence grows ---
    let mut cache = KvCache::new(model, 1024, 16, KvStorage::Vq { bits_per_element: 4.0 });
    let mut quant_overhead = 0.0;
    for _ in 0..256 {
        quant_overhead += cache.append_token();
    }
    println!(
        "KV cache at seq {}: {:.2} GB vs {:.2} GB FP16 ({:.0}% saved); \
         on-the-fly quantization overhead {:.1} us over 256 tokens",
        cache.seq,
        cache.bytes() as f64 / 1e9,
        cache.fp16_bytes() as f64 / 1e9,
        (1.0 - cache.compression()) * 100.0,
        quant_overhead
    );

    // --- End-to-end projection ---
    for scheme in [QuantScheme::Fp16, QuantScheme::vq_llm_4bit(), QuantScheme::vq_llm_2bit()] {
        let rep = Pipeline::new(gpu.clone(), model, scheme).generate(1024, 256, 16);
        println!(
            "{:28} prefill {:7.1} ms + decode {:7.1} ms = {:8.1} ms ({:.2} GB)",
            rep.scheme,
            rep.prefill_ms,
            rep.decode_ms,
            rep.total_ms(),
            rep.memory_gb
        );
    }
    Ok(())
}
