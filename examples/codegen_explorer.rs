//! Code-generation explorer: dump the CUDA-like kernels VQ-LLM generates
//! across algorithms, computations and optimization levels, showing how
//! each adaptive decision changes the emitted code.
//!
//! ```sh
//! cargo run --release --example codegen_explorer
//! ```

use vq_llm::{ComputeOp, GpuSpec, OptLevel, Session, VqAlgorithm};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let session = Session::builder().gpu(GpuSpec::rtx4090()).build()?;

    let cases = [
        (
            VqAlgorithm::Cq2,
            ComputeOp::attention_decode(32, 128, 1024, 1),
            OptLevel::Gc,
        ),
        (
            VqAlgorithm::Cq2,
            ComputeOp::attention_decode(32, 128, 1024, 1),
            OptLevel::O4,
        ),
        (
            VqAlgorithm::QuipSharp4,
            ComputeOp::Gemm {
                m: 2048,
                n: 11008,
                k: 4096,
            },
            OptLevel::O4,
        ),
        (
            VqAlgorithm::Aqlm3,
            ComputeOp::Gemv {
                n: 11008,
                k: 4096,
                batch: 1,
            },
            OptLevel::O4,
        ),
    ];

    for (algo, op, level) in cases {
        let plan = session.plan_at(&algo.config(), &op, level)?;
        println!("────────────────────────────────────────────────────────────");
        println!("{} ⊕ {} at {}\n", algo, op, level);
        println!("{}", session.emit(&plan));
    }

    println!("────────────────────────────────────────────────────────────");
    println!("Note how GC reads every entry from global memory, O4 resolves the");
    println!("codebook cache with two compares, QuiP# GeMM shuffles its fragments");
    println!("into mma layout, and AQLM GeMV keeps shared-memory fusion because");
    println!("its 7-shuffle requirement exceeds the threshold of 5.");
    Ok(())
}
