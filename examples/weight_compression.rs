//! Weight-only compression pipeline: quantize a linear layer with each of
//! the paper's three weight algorithms (QuiP#-4, AQLM-3, GPTVQ-2), check
//! the fused GeMV output against the reference, and compare decode-phase
//! latencies — one `Session` per algorithm, all sharing one plan cache.
//!
//! ```sh
//! cargo run --release --example weight_compression
//! ```

use std::sync::Arc;
use vq_llm::kernels::{elementwise, fp16};
use vq_llm::tensor::{linalg, metrics, synth};
use vq_llm::{ComputeOp, GpuSpec, PlanCache, Session, VqAlgorithm};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let gpu = GpuSpec::rtx4090();
    let shared_cache = Arc::new(PlanCache::new());

    // A small correlated "weight" so the functional path runs quickly; the
    // latency model is evaluated at the real Llama-7B MLP shape.
    let w = synth::correlated_channels(128, 256, 8, 0.9, 3);
    let x: Vec<f32> = (0..128).map(|i| (i as f32 * 0.13).sin()).collect();

    println!(
        "{:10} {:>12} {:>12} {:>12} {:>12}",
        "algorithm", "rel. error", "VQ-LLM", "vs FP16", "vs AWQ-4"
    );
    let shape = ComputeOp::Gemv {
        n: 11008,
        k: 4096,
        batch: 1,
    };
    let fp = fp16::gemv(&gpu, 11008, 4096, 1);
    let awq = elementwise::awq_gemv(&gpu, 11008, 4096, 1);

    for algo in VqAlgorithm::WEIGHT {
        let session = Session::builder()
            .gpu(gpu.clone())
            .weight_algo(algo)
            .plan_cache(Arc::clone(&shared_cache))
            .build()?;

        // Functional correctness on the small layer.
        let wq = session.quantize_weights(&w, 11)?;
        let plan = session.weight_plan(&ComputeOp::Gemv {
            n: 256,
            k: 128,
            batch: 1,
        })?;
        let (y, _) = session.run_gemv(&plan, &x, &wq)?;
        let y_ref = linalg::gemv(&wq.dequantize()?.transposed(), &x)?;
        assert!(
            metrics::allclose(&y, &y_ref, 1e-4, 1e-4),
            "fused GeMV must equal dequantize-then-multiply"
        );
        let rel = metrics::rel_frobenius(w.as_slice(), wq.dequantize()?.as_slice());

        // Latency at the Llama-7B MLP shape.
        let (_, out) = session.best_weight_plan(&shape)?;
        println!(
            "{:10} {:>12.4} {:>10.1}us {:>11.2}x {:>11.2}x",
            algo.name(),
            rel,
            out.us(),
            fp.us() / out.us(),
            awq.us() / out.us(),
        );
    }
    println!("\n(fused outputs verified against dequantize-then-compute references)");
    println!(
        "(shared plan cache across all three sessions: {} plans)",
        shared_cache.len()
    );
    Ok(())
}
