//! Serving an engine over TCP: the network front end end to end.
//!
//! Builds a CPU-backed `Engine`, registers a quantized shared context,
//! and binds a [`NetServer`] — driver thread, weighted fair queue,
//! SLO-aware admission, line protocol. Then it plays the client side
//! over a real loopback socket: reads the `hello` handshake, streams two
//! tenants' tokens, shows a typed deadline rejection with its computed
//! `retry_after_ms`, fetches the `stats` frame (scheduler counters +
//! latency histograms), and finishes with a **graceful drain** — the
//! last in-flight stream flushes to completion while the drain report
//! counts what finished vs what had to be cancelled.
//!
//! ```sh
//! cargo run --release --example net_serve
//! # or keep serving so examples/net_client.rs can connect:
//! cargo run --release --example net_serve -- 127.0.0.1:8844
//! ```
//!
//! The query width is the context's `head_dim` (32 here) — a client
//! sending any other width gets a typed `invalid` rejection, not a hang.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use vq_llm::net::proto;
use vq_llm::tensor::synth;
use vq_llm::{
    AdmissionConfig, Engine, NetServer, ProfileConfig, ServeConfig, SharedContext, VqAlgorithm,
};

const SEQ: usize = 320;
const HEAD_DIM: usize = 32;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut engine = Engine::builder()
        .cpu_threads(0) // real host execution, sized to the machine
        .weight_algo(VqAlgorithm::Gptvq2)
        .kv_algo(VqAlgorithm::Cq4)
        .serve_config(ServeConfig::new(4, 16))
        .profile_config(ProfileConfig::disabled())
        .build()?;
    let session = engine.session_unbound();
    let ctx = SharedContext::new(
        session.quantize_kv(&synth::kv_stream(SEQ, HEAD_DIM, 0.85, 1), 1)?,
        session.quantize_kv(&synth::kv_stream(SEQ, HEAD_DIM, 0.85, 2), 2)?,
        session.quantize_weights(
            &synth::correlated_channels(HEAD_DIM, HEAD_DIM, 4, 0.9, 3),
            3,
        )?,
    )?;
    let handle = engine.register_context(ctx)?;

    // Tenant 1 is paid-tier: two decode slots for every one of tenant 2's
    // when both are backlogged.
    let cfg = AdmissionConfig {
        weights: vec![(1, 2), (2, 1)],
        ..AdmissionConfig::default()
    };

    // With an explicit address, just serve until killed (for net_client).
    if let Some(addr) = std::env::args().nth(1) {
        let server = NetServer::bind(engine, vec![handle], cfg, addr.as_str())?;
        println!(
            "serving on {} — try: cargo run --release --example net_client -- {}",
            server.local_addr(),
            server.local_addr()
        );
        loop {
            std::thread::sleep(Duration::from_secs(60));
        }
    }

    // Otherwise: loopback demo, server and client in one process.
    let server = NetServer::bind(engine, vec![handle], cfg, ("127.0.0.1", 0))?;
    println!("serving on {}", server.local_addr());

    let stream = TcpStream::connect(server.local_addr())?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let recv = |reader: &mut BufReader<TcpStream>| -> String {
        let mut line = String::new();
        reader.read_line(&mut line).expect("server frame");
        line.trim().to_string()
    };

    let query = |tenant: u64| -> Vec<f32> {
        (0..HEAD_DIM)
            .map(|d| ((tenant as usize * 11 + d) as f32 * 0.17).sin())
            .collect()
    };

    // Two streaming submissions on one connection...
    for tenant in [1u64, 2] {
        let line = proto::submit_line(0, tenant, &query(tenant), 100, 3, 0, None, true);
        writeln!(writer, "{line}")?;
    }
    // ...and one that cannot meet its deadline: rejected *now*, with a
    // computed backoff, instead of admitted to fail later.
    writeln!(
        writer,
        "{}",
        proto::submit_line(0, 3, &query(3), 100, 64, 0, Some(0), false)
    )?;

    let mut done = 0;
    while done < 3 {
        let frame = recv(&mut reader);
        println!("<- {frame}");
        if frame.contains("\"done\"") || frame.contains("\"rejected\"") {
            done += 1;
        }
    }

    // Poll a finished request: the status frame carries its decoded rows.
    writeln!(writer, "{{\"verb\":\"poll\",\"id\":1}}")?;
    println!("<- {}", recv(&mut reader));

    // Scheduler counters + metrics snapshot (step latency p50/p99, queue
    // depth, per-reason rejections, per-tenant tokens/s, connection
    // lifecycle counters).
    writeln!(writer, "{{\"verb\":\"stats\"}}")?;
    println!("<- {}", recv(&mut reader));

    // Graceful drain: submit one more stream, then drain the server
    // while this client is still reading. The in-flight stream flushes
    // to completion (bitwise identical to a solo decode), new work
    // would be rejected typed as `draining` with a computed
    // `retry_after_ms`, and the report counts the outcome.
    writeln!(
        writer,
        "{}",
        proto::submit_line(0, 1, &query(1), 100, 3, 0, None, true)
    )?;
    loop {
        let frame = recv(&mut reader);
        println!("<- {frame}");
        if frame.contains("\"accepted\"") {
            break;
        }
    }
    let drainer = std::thread::spawn(move || server.drain(Duration::from_secs(30)));
    loop {
        let frame = recv(&mut reader);
        println!("<- {frame}");
        if frame.contains("\"done\"") {
            break;
        }
    }
    let report = drainer.join().expect("drain thread");
    println!(
        "drained: {} completed, {} cancelled",
        report.completed, report.cancelled
    );
    Ok(())
}
