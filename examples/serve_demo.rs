//! Serving scenario: a batched request scheduler over one shared
//! quantized context — tenants arrive, take decode slots as they free up
//! (continuous batching), and every step runs one shared K-decode for the
//! whole batch.
//!
//! This is the single-context `Session::serve` facade; for decode batches
//! spanning *multiple* registered contexts (and profile-driven
//! replanning), see `examples/multi_context_serve.rs` and `vq_llm::Engine`.
//!
//! ```sh
//! cargo run --release --example serve_demo
//! ```

use vq_llm::tensor::synth;
use vq_llm::{DecodeRequest, RequestStatus, ServeConfig, Session, SharedContext, VqAlgorithm};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let session = Session::builder()
        .cpu_threads(0) // real host execution, sized to the machine
        .weight_algo(VqAlgorithm::Gptvq2)
        .kv_algo(VqAlgorithm::Cq4)
        .build()?;

    // The shared pre-quantized context every tenant decodes against: a K/V
    // cache of 512 tokens and an output projection, all on packed codes.
    let (seq, dim) = (512, 64);
    let k = synth::kv_stream(seq, dim, 0.85, 1);
    let v = synth::kv_stream(seq, dim, 0.85, 2);
    let w = synth::correlated_channels(dim, dim, 4, 0.9, 3);
    let ctx = SharedContext::new(
        session.quantize_kv(&k, 4)?,
        session.quantize_kv(&v, 5)?,
        session.quantize_weights(&w, 6)?,
    )?;

    // Admission limits: at most 4 requests decode together, 16 may wait.
    let mut server = session.serve(ctx, ServeConfig::new(4, 16))?;

    // Six tenants at ragged context positions, asking for different
    // lengths — more tenants than slots, so the batch re-forms as
    // requests finish.
    let mut handles = Vec::new();
    for tenant in 0..6u64 {
        let query: Vec<f32> = (0..dim)
            .map(|d| ((tenant as usize * 11 + d) as f32 * 0.17).sin())
            .collect();
        let req = DecodeRequest::new(
            tenant,
            query,
            128 + 60 * tenant as usize,
            8 + tenant as usize,
        );
        handles.push(server.submit(req)?);
    }
    println!(
        "submitted {} requests (queue {}, running {})",
        handles.len(),
        server.queued(),
        server.running()
    );

    // Single-step the decode loop and watch the scheduler work.
    while !server.is_idle() {
        let report = server.step()?;
        println!(
            "step {:2}: batch {} (+{} admitted, -{} finished, {} queued)",
            report.step,
            report.batch,
            report.admitted.len(),
            report.finished.len(),
            report.queued
        );
    }

    for handle in &handles {
        // The typed lifecycle: a drained request polls as Finished with
        // its token count before the output is collected.
        assert!(matches!(
            server.status(handle),
            RequestStatus::Finished { .. }
        ));
        let out = server.take_output(handle).expect("completed");
        println!(
            "tenant {}: {} tokens decoded (submitted step {}, finished step {}, kv quant {:.1} us)",
            out.tenant,
            out.steps.len(),
            out.submitted_step,
            out.finished_step,
            out.kv_quant_us
        );
    }
    let stats = server.stats();
    println!(
        "\n{} tokens over {} steps — mean batch occupancy {:.2}; plan cache: {} plans, {:.0}% hits",
        stats.decoded_tokens,
        stats.steps,
        stats.mean_batch(),
        session.plan_cache().len(),
        session.cache_stats().hit_rate() * 100.0
    );
    Ok(())
}
