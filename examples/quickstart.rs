//! Quickstart: open a `Session`, quantize a tensor, generate an optimized
//! fused kernel, and compare against the FP16 baseline.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use vq_llm::kernels::fp16;
use vq_llm::tensor::metrics;
use vq_llm::tensor::synth;
use vq_llm::{GpuSpec, OptLevel, Session, VqAlgorithm};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One session = device + algorithms + opt level + shared plan cache.
    let session = Session::builder()
        .gpu(GpuSpec::rtx4090())
        .weight_algo(VqAlgorithm::QuipSharp4)
        .kv_algo(VqAlgorithm::Cq2)
        .opt(OptLevel::O4)
        .build()?;

    // 1. Quantize a synthetic KV-cache stream with CQ-2 (VQ<4,8,1>).
    let kv = synth::kv_stream(512, 128, 0.85, 42);
    let quantized = session.quantize_kv(&kv, 7)?;
    let restored = quantized.dequantize()?;
    println!(
        "quantized 512x128 KV tensor with {}: {} -> {} bytes ({}x), rel. error {:.3}",
        session.kv_algo(),
        kv.storage_bytes(vq_llm::tensor::DType::F16),
        quantized.index_bytes(),
        kv.storage_bytes(vq_llm::tensor::DType::F16) / quantized.index_bytes(),
        metrics::rel_frobenius(kv.as_slice(), restored.as_slice()),
    );

    // 2. Generate an optimized fused attention kernel (memoized: a second
    //    request for the same op is a cache hit).
    let op = session.attention_op(1024, 1);
    let (best, out) = session.best_kv_plan(&op)?;
    println!("\ngenerated plan:\n  {}", best.describe());

    // 3. Estimate its latency against the FP16 FlashDecoding baseline.
    let baseline = fp16::attention(
        session.gpu(),
        fp16::AttnBaseline::FlashDecoding,
        1,
        32,
        128,
        1024,
    );
    println!(
        "\nlatency: FP16 {:.1} us vs VQ-LLM {:.1} us ({:.2}x) at level {}",
        baseline.us(),
        out.us(),
        baseline.us() / out.us(),
        best.opt_level,
    );

    // 4. Emit the CUDA-like kernel a GPU backend would compile.
    println!("\n--- generated kernel source ---");
    println!("{}", session.emit(&best));

    let stats = session.cache_stats();
    println!(
        "plan cache: {} plans, {} hits / {} misses",
        session.plan_cache().len(),
        stats.hits,
        stats.misses
    );
    Ok(())
}
