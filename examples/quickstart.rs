//! Quickstart: quantize a tensor, generate an optimized fused kernel, run
//! it, and compare against the FP16 baseline.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use vq_llm::core::{ComputeOp, KernelPlanner};
use vq_llm::gpu::GpuSpec;
use vq_llm::kernels::{fp16, vq_kernel, AccessProfile};
use vq_llm::tensor::{metrics, synth};
use vq_llm::vq::{VqAlgorithm, VqQuantizer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Quantize a synthetic KV-cache stream with CQ-2 (VQ<4,8,1>).
    let algo = VqAlgorithm::Cq2;
    let kv = synth::kv_stream(512, 128, 0.85, 42);
    let quantized = VqQuantizer::new(algo.config()).quantize(&kv, 7)?;
    let restored = quantized.dequantize()?;
    println!(
        "quantized 512x128 KV tensor with {}: {} -> {} bytes ({}x), rel. error {:.3}",
        algo,
        kv.storage_bytes(vq_llm::tensor::DType::F16),
        quantized.index_bytes(),
        kv.storage_bytes(vq_llm::tensor::DType::F16) / quantized.index_bytes(),
        metrics::rel_frobenius(kv.as_slice(), restored.as_slice()),
    );

    // 2. Generate an optimized fused attention kernel for an RTX 4090.
    let gpu = GpuSpec::rtx4090();
    let op = ComputeOp::attention_decode(32, 128, 1024, 1);
    let planner = KernelPlanner::new(gpu.clone());
    let plan = planner.plan(&algo.config(), &op)?;
    println!("\ngenerated plan:\n  {}", plan.describe());

    // 3. Estimate its latency against the FP16 FlashDecoding baseline.
    let profile = AccessProfile::default_for(&algo.config());
    let (best, out) = vq_kernel::best_plan(&gpu, &algo.config(), &op, &profile)?;
    let baseline = fp16::attention(&gpu, fp16::AttnBaseline::FlashDecoding, 1, 32, 128, 1024);
    println!(
        "\nlatency: FP16 {:.1} us vs VQ-LLM {:.1} us ({:.2}x) at level {}",
        baseline.us(),
        out.us(),
        baseline.us() / out.us(),
        best.opt_level,
    );

    // 4. Emit the CUDA-like kernel a GPU backend would compile.
    println!("\n--- generated kernel source ---");
    println!("{}", vq_llm::core::codegen::emit(&best));
    Ok(())
}
