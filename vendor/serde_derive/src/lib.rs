//! No-op `Serialize`/`Deserialize` derives.
//!
//! The workspace only ever *derives* the serde traits (to keep its types
//! serde-ready for downstream users); nothing serializes at build or test
//! time. These derives therefore expand to nothing, which keeps the fully
//! offline build free of the real `serde_derive` dependency tree.

use proc_macro::TokenStream;

/// Derives nothing; accepted for API compatibility with serde_derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Derives nothing; accepted for API compatibility with serde_derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
