//! Vendored stand-in for `criterion`.
//!
//! Implements the slice of the criterion API the workspace's benches use:
//! [`criterion_group!`]/[`criterion_main!`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`]/[`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId`], and [`Bencher::iter`]. Timing is a simple
//! warmup-then-measure wall-clock mean — no statistics, plots, or saved
//! baselines — which is enough to compare hot paths in the fully offline
//! build environment.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Target measurement time per benchmark.
const TARGET: Duration = Duration::from_millis(100);

/// Hard cap on measured iterations (keeps very fast closures bounded).
const MAX_ITERS: u64 = 100_000;

/// Top-level benchmark driver (stand-in for `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 100,
            _criterion: self,
        }
    }
}

/// A named benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Builds `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            full: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.full)
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples (scales measurement effort).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark closure.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(&self.name, &id.to_string());
        self
    }

    /// Runs one benchmark closure against an explicit input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        b.report(&self.name, &id.to_string());
        self
    }

    /// Ends the group (prints nothing extra; provided for API parity).
    pub fn finish(self) {}
}

/// Times a closure (stand-in for `criterion::Bencher`).
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    measured: Option<(Duration, u64)>,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            sample_size,
            measured: None,
        }
    }

    /// Measures `f`: a short warmup, then enough iterations to fill the
    /// target measurement time (scaled by the group's sample size).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup + calibration.
        let start = Instant::now();
        std::hint::black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));

        let budget = TARGET.mul_f64((self.sample_size as f64 / 100.0).clamp(0.05, 1.0));
        let iters = (budget.as_nanos() / once.as_nanos()).clamp(1, u128::from(MAX_ITERS)) as u64;

        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        self.measured = Some((start.elapsed(), iters));
    }

    fn report(&self, group: &str, id: &str) {
        match self.measured {
            Some((total, iters)) => {
                let per = total.as_secs_f64() / iters as f64;
                println!(
                    "{group}/{id:<40} {:>12}/iter ({iters} iters)",
                    format_time(per)
                );
            }
            None => println!("{group}/{id:<40} (no measurement)"),
        }
    }
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Bundles benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("stub");
        g.sample_size(10);
        let mut ran = 0u64;
        g.bench_function("spin", |b| {
            b.iter(|| {
                ran += 1;
                std::hint::black_box(ran)
            })
        });
        g.finish();
        assert!(ran > 0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", "p").to_string(), "f/p");
    }

    #[test]
    fn time_units() {
        assert!(format_time(2.0).contains(" s"));
        assert!(format_time(2e-3).contains("ms"));
        assert!(format_time(2e-6).contains("us"));
        assert!(format_time(2e-9).contains("ns"));
    }
}
