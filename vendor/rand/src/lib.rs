//! Vendored stand-in for `rand` 0.8.
//!
//! Provides the slice of the rand API the workspace consumes:
//! `rand::rngs::StdRng`, `SeedableRng::seed_from_u64`, and
//! `Rng::gen_range` over integer and float ranges. The generator is a
//! splitmix64 core — deterministic for a given seed, statistically fine
//! for k-means++ seeding and synthetic-data generation, and with zero
//! dependencies so the fully offline build works.

use std::ops::Range;

/// Seedable random generators (stand-in for `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling from a range (stand-in for `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from the range using `bits` of entropy per call.
    fn sample_from(self, bits: &mut dyn FnMut() -> u64) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, bits: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                // Widen to i128 so signed ranges wider than the type's
                // positive half (e.g. -100i8..100) neither overflow the
                // subtraction nor wrap the offset add.
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (bits() % span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from(self, bits: &mut dyn FnMut() -> u64) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let unit = (bits() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from(self, bits: &mut dyn FnMut() -> u64) -> f32 {
        assert!(self.start < self.end, "empty range in gen_range");
        let unit = (bits() >> 40) as f32 / (1u64 << 24) as f32;
        self.start + unit * (self.end - self.start)
    }
}

/// Random-value convenience methods (stand-in for `rand::Rng`).
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Draws one value uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        let mut bits = || self.next_u64();
        range.sample_from(&mut bits)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// Deterministic splitmix64 generator (stand-in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                // Avoid the all-zero fixed point and decorrelate tiny seeds.
                state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x1234_5678_9ABC_DEF0,
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-0.5f64..0.5);
            assert!((-0.5..0.5).contains(&f));
            let g = rng.gen_range(0.25f32..4.0);
            assert!((0.25..4.0).contains(&g));
        }
    }

    #[test]
    fn signed_ranges_wider_than_half_the_type() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.gen_range(-100i8..100);
            assert!((-100..100).contains(&v), "{v}");
            let w = rng.gen_range(i64::MIN / 2..i64::MAX / 2);
            assert!((i64::MIN / 2..i64::MAX / 2).contains(&w));
        }
    }

    #[test]
    fn values_spread_over_the_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..256 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }
}
