//! Vendored stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its plain-data types
//! so they are serde-ready, but never serializes during build or test. The
//! traits here are empty markers and the derives (re-exported from the
//! vendored `serde_derive`) are no-ops. Swapping in the real `serde` crate
//! requires no source changes.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
