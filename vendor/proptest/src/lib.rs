//! Vendored stand-in for `proptest`.
//!
//! Implements the slice of the proptest API the workspace's property tests
//! consume: the [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`/
//! `prop_assume!`, and the range / [`sample::select`] /
//! [`collection::vec`] / [`any`] strategies. Each test runs
//! `PROPTEST_CASES` (default 64) deterministic cases seeded from the test
//! name, so failures are reproducible. There is **no shrinking**: a
//! failure reports the case index and seed instead of a minimized input.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Number of cases per property (override with `PROPTEST_CASES`).
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Per-test deterministic source of randomness.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Seeds from the test name and case index so every case is
    /// reproducible and independent.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(StdRng::seed_from_u64(h ^ (u64::from(case) << 32)))
    }

    fn rng(&mut self) -> &mut StdRng {
        &mut self.0
    }
}

/// Outcome of one generated case.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the input; try another case.
    Reject,
    /// A `prop_assert*` failed.
    Fail(String),
}

/// Result alias used by the generated test bodies.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A value generator (stand-in for `proptest::strategy::Strategy`).
pub trait Strategy {
    /// Generated value type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Derives a second strategy from each generated value.
    fn prop_flat_map<R: Strategy, F: Fn(Self::Value) -> R>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy adapter produced by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, R: Strategy, F: Fn(S::Value) -> R> Strategy for FlatMap<S, F> {
    type Value = R::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                if hi == <$t>::MAX {
                    let span = (hi - lo) as u64; // inclusive count minus one
                    if span == u64::MAX {
                        // Full-width range: raw bits already cover it.
                        lo + rng.rng().next_u64() as $t
                    } else {
                        lo + (rng.rng().next_u64() % (span + 1)) as $t
                    }
                } else {
                    rng.rng().gen_range(lo..hi + 1)
                }
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, usize);

impl Strategy for Range<u64> {
    type Value = u64;
    fn sample(&self, rng: &mut TestRng) -> u64 {
        rng.rng().gen_range(self.clone())
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        rng.rng().gen_range(self.clone())
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.rng().gen_range(self.clone())
    }
}

/// Types with a canonical "any value" strategy (stand-in for
/// `proptest::arbitrary::Arbitrary`).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.rng().next_u64() & 1 == 1
    }
}

/// Strategy for any value of `T` (see [`any`]).
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub mod sample {
    //! Sampling from explicit value lists.

    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy choosing uniformly from a fixed list (see [`select`]).
    #[derive(Debug, Clone)]
    pub struct Select<T>(Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.rng().gen_range(0..self.0.len());
            self.0[i].clone()
        }
    }

    /// Chooses uniformly from `options` (must be non-empty).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() needs at least one option");
        Select(options)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Length specifications accepted by [`vec`]: a fixed `usize` or a
    /// `Range<usize>` (stand-in for `proptest::collection::SizeRange`).
    pub trait SizeRange {
        /// Picks a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.rng().gen_range(self.clone())
        }
    }

    /// `Vec` strategy (see [`vec`]).
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A `Vec` of values drawn from `element`, with `len` entries (fixed
    /// or drawn from a range).
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

pub mod prelude {
    //! Everything the `proptest!` macro and its callers need.

    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assume, proptest, Arbitrary, Strategy,
        TestCaseError, TestCaseResult, TestRng,
    };
}

pub mod prop {
    //! `prop::sample::select(...)`-style path alias, as re-exported by the
    //! real proptest prelude.

    pub use crate::collection;
    pub use crate::sample;
}

/// Defines property tests: each `fn name(arg in strategy, ...)` becomes a
/// `#[test]` running [`cases`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let total = $crate::cases();
                let mut rejected = 0u32;
                let mut case = 0u32;
                while case < total {
                    let mut __rng = $crate::TestRng::for_case(stringify!($name), case + rejected);
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                    let outcome: $crate::TestCaseResult = (|| { $body Ok(()) })();
                    match outcome {
                        Ok(()) => case += 1,
                        Err($crate::TestCaseError::Reject) => {
                            rejected += 1;
                            assert!(
                                rejected < 16 * total,
                                "{}: too many prop_assume! rejections",
                                stringify!($name)
                            );
                        }
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "{} failed at case {} (seed = name ^ case): {}",
                                stringify!($name), case + rejected, msg
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Asserts inside a property body; failure reports the generated case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let lhs = $lhs;
        let rhs = $rhs;
        if lhs != rhs {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}` ({:?} != {:?})",
                stringify!($lhs),
                stringify!($rhs),
                lhs,
                rhs
            )));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let lhs = $lhs;
        let rhs = $rhs;
        if lhs != rhs {
            return Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    }};
}

/// Discards the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate as proptest;
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_hold(x in 3usize..17, f in -1.0f64..1.0, b in 1u8..=3) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
            prop_assert!((1..=3).contains(&b));
        }

        #[test]
        fn full_width_inclusive_ranges_do_not_panic(
            x in 0usize..=usize::MAX,
            y in 250u8..=u8::MAX,
        ) {
            let _ = x; // whole domain is valid
            prop_assert!(y >= 250);
        }

        #[test]
        fn select_and_vec_work(
            w in prop::sample::select(vec![4usize, 8, 16]),
            v in proptest::collection::vec(0usize..10, 32),
        ) {
            prop_assert!([4, 8, 16].contains(&w));
            prop_assert_eq!(v.len(), 32);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn assume_rejects(x in 0usize..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn any_bool_varies(v in proptest::collection::vec(any::<bool>(), 64)) {
            prop_assert!(v.iter().any(|&b| b) && v.iter().any(|&b| !b));
        }
    }

    #[test]
    fn cases_env_default() {
        assert!(crate::cases() >= 1);
    }
}
