//! Integration: fused VQ kernels must produce exactly the same output as
//! dequantize-then-reference-compute, for every algorithm preset and every
//! computation, at every optimization level — executed through the
//! `Session` facade's backend.

use vq_llm::tensor::{linalg, metrics, synth};
use vq_llm::vq::{CodebookScope, VqConfig, VqQuantizer};
use vq_llm::{ComputeOp, GpuSpec, OptLevel, Session, VqAlgorithm};

fn session() -> Session {
    Session::builder()
        .gpu(GpuSpec::rtx4090())
        .build()
        .expect("valid session")
}

/// Every weight algorithm: fused GeMM == A × dequant(W), across the whole
/// optimization ladder (the cache reordering and remap must be
/// transparent).
#[test]
fn gemm_matches_reference_for_all_weight_algorithms_and_levels() {
    let s = session();
    // Small shapes so AQLM's 4096-entry codebook still trains: use a
    // reduced-entry stand-in per algorithm with the same structure.
    let cases: Vec<(&str, VqConfig)> = vec![
        (
            "quip-like lattice",
            VqConfig::new_lattice(8, 1 << 12, 16, 2, CodebookScope::PerTensor).unwrap(),
        ),
        (
            "aqlm-like",
            VqConfig::new(8, 128, 2, CodebookScope::PerTensor).unwrap(),
        ),
        (
            "gptvq-like per-tile",
            VqConfig::new(4, 32, 1, CodebookScope::PerTile { rows: 32, cols: 32 }).unwrap(),
        ),
    ];
    let a = synth::gaussian(8, 64, 1.0, 5);
    for (name, cfg) in cases {
        let w = synth::correlated_channels(64, 64, cfg.vector_size, 0.9, 3);
        let wq = VqQuantizer::new(cfg).quantize(&w, 1).expect(name);
        let reference = linalg::matmul(&a, &wq.dequantize().unwrap()).unwrap();
        let op = ComputeOp::Gemm { m: 8, n: 64, k: 64 };
        for level in OptLevel::ALL {
            let plan = s.plan_at(&cfg, &op, level).expect(name);
            let (fused, out) = s.run_gemm(&plan, &a, &wq).expect(name);
            assert!(
                metrics::allclose(fused.as_slice(), reference.as_slice(), 1e-4, 1e-4),
                "{name} at {level}: fused GeMM diverged"
            );
            assert!(out.us().is_finite() && out.us() > 0.0, "{name} at {level}");
        }
    }
}

/// Fused GeMV equals xᵀ × dequant(W) for a CQ-style per-channel-group
/// configuration.
#[test]
fn gemv_matches_reference_with_channel_group_books() {
    let s = session();
    let cfg = VqConfig::new(4, 32, 1, CodebookScope::PerChannelGroup { channels: 8 }).unwrap();
    let w = synth::correlated_channels(96, 64, 4, 0.9, 9);
    let wq = VqQuantizer::new(cfg).quantize(&w, 2).unwrap();
    let x: Vec<f32> = (0..96).map(|i| (i as f32 * 0.21).sin()).collect();
    let reference = linalg::gemv(&wq.dequantize().unwrap().transposed(), &x).unwrap();
    let op = ComputeOp::Gemv {
        n: 64,
        k: 96,
        batch: 1,
    };
    for level in [OptLevel::Gc, OptLevel::O2, OptLevel::O4] {
        let plan = s.plan_at(&cfg, &op, level).unwrap();
        let (fused, _) = s.run_gemv(&plan, &x, &wq).unwrap();
        assert!(
            metrics::allclose(&fused, &reference, 1e-4, 1e-4),
            "GeMV diverged at {level}"
        );
    }
}

/// Fused attention with both CQ presets equals attention over the
/// dequantized caches.
#[test]
fn attention_matches_reference_for_cq_presets() {
    for algo in VqAlgorithm::KV_CACHE {
        let s = Session::builder().kv_algo(algo).build().unwrap();
        let k = synth::kv_stream(256, 64, 0.85, 3);
        let v = synth::kv_stream(256, 64, 0.85, 4);
        let kq = s.quantize_kv(&k, 5).unwrap();
        let vq = s.quantize_kv(&v, 6).unwrap();
        let q: Vec<f32> = (0..64).map(|i| (i as f32 * 0.11).cos()).collect();
        let reference = linalg::attention_decode_ref(
            &q,
            &kq.dequantize().unwrap(),
            &vq.dequantize().unwrap(),
            1.0 / 8.0,
        )
        .unwrap();
        let plan = s
            .kv_plan(&ComputeOp::attention_decode(1, 64, 256, 1))
            .unwrap();
        let (fused, _) = s.run_attention_head(&plan, &q, &kq, &vq).unwrap();
        assert!(
            metrics::allclose(&fused, &reference, 1e-4, 1e-4),
            "{algo}: fused attention diverged"
        );
    }
}

/// The quantize→dequantize path preserves enough signal that attention
/// outputs stay close to the FP16 outputs (the algorithmic premise).
#[test]
fn quantized_attention_approximates_fp16_attention() {
    let s = session();
    let k = synth::kv_stream(512, 64, 0.9, 13);
    let v = synth::kv_stream(512, 64, 0.9, 14);
    let kq = s.quantize_kv(&k, 1).unwrap();
    let vq = s.quantize_kv(&v, 2).unwrap();
    let q: Vec<f32> = (0..64).map(|i| (i as f32 * 0.17).sin()).collect();

    let fp16 = linalg::attention_decode_ref(&q, &k, &v, 1.0 / 8.0).unwrap();
    let vq_out = linalg::attention_decode_ref(
        &q,
        &kq.dequantize().unwrap(),
        &vq.dequantize().unwrap(),
        1.0 / 8.0,
    )
    .unwrap();
    let rel = metrics::rel_frobenius(&fp16, &vq_out);
    assert!(rel < 0.35, "CQ-4 attention drift too large: {rel}");
}
