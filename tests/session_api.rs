//! Integration: the `Session` facade — builder validation, plan-cache
//! hit/miss semantics, parity with the raw low-level APIs, and cache
//! sharing across the pipelines a session creates.

use std::sync::Arc;
use vq_llm::core::{KernelPlanner, ProfileSummary};
use vq_llm::{
    ComputeOp, GpuSpec, OptLevel, PlanCache, QuantScheme, Session, VqAlgorithm, VqLlmError,
};

fn session() -> Session {
    Session::builder()
        .gpu(GpuSpec::rtx4090())
        .weight_algo(VqAlgorithm::QuipSharp4)
        .kv_algo(VqAlgorithm::Cq4)
        .opt(OptLevel::O4)
        .build()
        .expect("default configuration is valid")
}

#[test]
fn builder_rejects_swapped_algorithms() {
    let err = Session::builder()
        .weight_algo(VqAlgorithm::Cq4)
        .build()
        .unwrap_err();
    match err {
        VqLlmError::InvalidSession { what, detail } => {
            assert_eq!(what, "weight_algo");
            assert!(detail.contains("CQ-4"), "{detail}");
        }
        other => panic!("wrong error: {other}"),
    }

    let err = Session::builder()
        .kv_algo(VqAlgorithm::Aqlm3)
        .build()
        .unwrap_err();
    assert!(
        matches!(
            err,
            VqLlmError::InvalidSession {
                what: "kv_algo",
                ..
            }
        ),
        "{err}"
    );
}

#[test]
fn builder_rejects_degenerate_gpu() {
    let mut gpu = GpuSpec::rtx4090();
    gpu.num_sms = 0;
    let err = Session::builder().gpu(gpu).build().unwrap_err();
    assert!(
        matches!(err, VqLlmError::InvalidSession { what: "gpu", .. }),
        "{err}"
    );
}

#[test]
fn every_paper_algorithm_pairing_builds() {
    for weight in VqAlgorithm::WEIGHT {
        for kv in VqAlgorithm::KV_CACHE {
            for opt in OptLevel::ALL {
                Session::builder()
                    .weight_algo(weight)
                    .kv_algo(kv)
                    .opt(opt)
                    .build()
                    .unwrap_or_else(|e| panic!("{weight} + {kv} at {opt}: {e}"));
            }
        }
    }
}

#[test]
fn same_key_returns_pointer_equal_plans() {
    let s = session();
    let op = s.attention_op(1024, 1);
    let a = s.kv_plan(&op).unwrap();
    let b = s.kv_plan(&op).unwrap();
    assert!(Arc::ptr_eq(&a, &b), "second lookup must be a cache hit");
    let stats = s.cache_stats();
    assert_eq!((stats.hits, stats.misses), (1, 1), "{stats:?}");
}

#[test]
fn different_opt_level_is_a_cache_miss() {
    let s = session();
    let vq = VqAlgorithm::Cq4.config();
    let op = s.attention_op(1024, 1);
    let o2 = s.plan_at(&vq, &op, OptLevel::O2).unwrap();
    let o3 = s.plan_at(&vq, &op, OptLevel::O3).unwrap();
    assert!(!Arc::ptr_eq(&o2, &o3));
    assert_eq!(s.cache_stats().misses, 2);
    assert_eq!(s.plan_cache().len(), 2);
}

#[test]
fn o4_session_plan_resolves_to_adaptive_best() {
    // At O4 (the shipped configuration) plan() and the e2e pipeline must
    // agree on which kernel runs: both resolve to the adaptive best plan
    // and share one cache entry.
    let s = session();
    let op = s.attention_op(1024, 1);
    let (best, _) = s.best_kv_plan(&op).unwrap();
    let plan = s.kv_plan(&op).unwrap();
    assert!(
        Arc::ptr_eq(&best, &plan),
        "plan() at O4 must share the Best cache entry"
    );
    assert_eq!(s.plan_cache().len(), 1);
}

#[test]
fn session_and_pipeline_build_identical_best_keys() {
    // Session::kv_plan and the pipeline's decode-step attention planning
    // must share one cache entry; if their key recipes ever diverge the
    // cache silently stops deduplicating, so pin it: after pre-planning
    // the attention op via the session, a decode step may only add the
    // model's unique linear-shape keys.
    let s = session();
    let op = s.attention_op(1024, 16);
    s.kv_plan(&op).unwrap();
    let len_before = s.plan_cache().len();
    s.pipeline(s.scheme()).decode_step(1024, 16);
    let unique_linear: std::collections::HashSet<(usize, usize)> =
        s.model().linear_shapes().into_iter().collect();
    assert_eq!(
        s.plan_cache().len() - len_before,
        unique_linear.len(),
        "attention key must hit the session's entry; only linear keys may be new"
    );
}

#[test]
fn best_plan_is_cached_and_estimate_is_stable() {
    let s = session();
    let op = s.attention_op(4096, 8);
    let (p1, o1) = s.best_kv_plan(&op).unwrap();
    let (p2, o2) = s.best_kv_plan(&op).unwrap();
    assert!(Arc::ptr_eq(&p1, &p2));
    assert_eq!(o1.us(), o2.us(), "estimate must be deterministic");
    assert_eq!(s.cache_stats().misses, 1);
    assert_eq!(s.cache_stats().hits, 1);
}

#[test]
fn session_plans_match_raw_kernel_planner() {
    // The facade must add caching, not change planning decisions.
    let s = session();
    let planner = KernelPlanner::new(GpuSpec::rtx4090());
    for algo in VqAlgorithm::ALL {
        let vq = algo.config();
        let op = if algo.is_weight_algorithm() {
            ComputeOp::Gemv {
                n: 11008,
                k: 4096,
                batch: 1,
            }
        } else {
            ComputeOp::attention_decode(32, 128, 1024, 1)
        };
        for level in OptLevel::ALL {
            let via_session = s.plan_at(&vq, &op, level).unwrap();
            let raw = planner
                .plan_at(&vq, &op, level, &ProfileSummary::default_for(&vq))
                .unwrap();
            assert_eq!(*via_session, raw, "{algo} at {level}");
        }
    }
}

#[test]
fn pipelines_share_the_session_cache() {
    let s = session();
    // One generation fills the cache with the decode-step plans…
    s.generate(1024, 64, 16);
    let after_first = s.cache_stats();
    assert!(after_first.misses > 0, "{after_first:?}");
    // …and a second pipeline (even under another VQ scheme sharing ops
    // with the first only partially) never re-plans the same keys.
    s.generate(1024, 64, 16);
    let after_second = s.cache_stats();
    assert_eq!(
        after_second.misses, after_first.misses,
        "second run must plan nothing new"
    );
    assert!(after_second.hits > after_first.hits);
}

#[test]
fn shared_cache_across_sessions() {
    let cache = Arc::new(PlanCache::new());
    let a = Session::builder()
        .plan_cache(Arc::clone(&cache))
        .build()
        .unwrap();
    let b = Session::builder()
        .plan_cache(Arc::clone(&cache))
        .build()
        .unwrap();
    let op = a.attention_op(1024, 1);
    let pa = a.kv_plan(&op).unwrap();
    let pb = b.kv_plan(&op).unwrap();
    assert!(
        Arc::ptr_eq(&pa, &pb),
        "sessions must share plans via the cache"
    );
    assert_eq!(cache.stats().misses, 1);
    assert_eq!(cache.stats().hits, 1);
}

#[test]
fn functional_execution_goes_through_the_backend() {
    use vq_llm::tensor::{linalg, metrics, synth};
    let s = Session::builder()
        .weight_algo(VqAlgorithm::Gptvq2)
        .kv_algo(VqAlgorithm::Cq4)
        .build()
        .unwrap();

    // Fused GeMV through the session equals dequantize-then-multiply.
    let w = synth::correlated_channels(128, 256, 4, 0.9, 3);
    let wq = s.quantize_weights(&w, 11).unwrap();
    let x: Vec<f32> = (0..128).map(|i| (i as f32 * 0.13).sin()).collect();
    let plan = s
        .weight_plan(&ComputeOp::Gemv {
            n: 256,
            k: 128,
            batch: 1,
        })
        .unwrap();
    let (y, out) = s.run_gemv(&plan, &x, &wq).unwrap();
    let y_ref = linalg::gemv(&wq.dequantize().unwrap().transposed(), &x).unwrap();
    assert!(metrics::allclose(&y, &y_ref, 1e-4, 1e-4));
    assert!(out.us() > 0.0);

    // Shape mismatches surface as structured kernel errors.
    let bad = s.run_gemv(&plan, &x[..7], &wq).unwrap_err();
    assert!(matches!(bad, VqLlmError::Kernel(_)), "{bad}");
}

fn small_context(session: &Session) -> vq_llm::SharedContext {
    use vq_llm::tensor::synth;
    vq_llm::SharedContext::new(
        session
            .quantize_kv(&synth::kv_stream(288, 32, 0.85, 41), 1)
            .unwrap(),
        session
            .quantize_kv(&synth::kv_stream(288, 32, 0.85, 42), 2)
            .unwrap(),
        session
            .quantize_weights(&synth::correlated_channels(32, 32, 4, 0.9, 43), 3)
            .unwrap(),
    )
    .unwrap()
}

#[test]
fn engine_sessions_are_views_over_the_engine_state() {
    let mut engine = vq_llm::Engine::builder()
        .weight_algo(VqAlgorithm::Gptvq2)
        .kv_algo(VqAlgorithm::Cq4)
        .build()
        .unwrap();
    let unbound = engine.session_unbound();
    assert!(unbound.context_handle().is_none());
    assert!(
        Arc::ptr_eq(engine.plan_cache(), unbound.plan_cache()),
        "session views share the engine's plan cache"
    );

    let ctx = small_context(&unbound);
    let handle = engine.register_context(ctx.clone()).unwrap();
    let bound = engine.session(handle).unwrap();
    assert_eq!(bound.context_handle(), Some(handle));
    assert_eq!(
        bound.bound_context().unwrap().seq(),
        ctx.seq(),
        "bound session sees the registered context"
    );
    // The bound view serves its context without re-passing it…
    let mut srv = bound
        .serve_bound(vq_llm::ServeConfig::new(2, 4))
        .expect("serve_bound");
    let q: Vec<f32> = (0..32).map(|d| (d as f32 * 0.2).sin()).collect();
    let h = srv.submit(vq_llm::DecodeRequest::new(1, q, 10, 2)).unwrap();
    srv.run_until_drained().unwrap();
    assert_eq!(srv.take_output(&h).unwrap().steps.len(), 2);
    // …while an unbound view refuses.
    let err = unbound
        .serve_bound(vq_llm::ServeConfig::default())
        .unwrap_err();
    assert!(
        matches!(
            err,
            VqLlmError::InvalidSession {
                what: "context",
                ..
            }
        ),
        "{err}"
    );
    // Unknown handles are typed errors, not panics.
    drop(bound);
    let other = vq_llm::Engine::builder().build().unwrap();
    assert!(other.session(handle).is_err());
}

#[test]
fn plan_cache_path_round_trips_the_warm_start() {
    let path = std::env::temp_dir().join(format!(
        "vqllm_session_api_plan_cache_{}.txt",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);

    // Engine 1: cold start — registration plans both canonical shapes.
    let mut cold = vq_llm::Engine::builder()
        .weight_algo(VqAlgorithm::Gptvq2)
        .kv_algo(VqAlgorithm::Cq4)
        .plan_cache_path(&path)
        .build()
        .unwrap();
    let ctx = small_context(&cold.session_unbound());
    let hc = cold.register_context(ctx.clone()).unwrap();
    let cold_stats = cold.cache_stats();
    assert_eq!(cold_stats.misses, 2, "cold registration plans twice");
    let written = cold.save_plan_cache().unwrap();
    assert_eq!(written, 2);

    // Engine 2: same path — registration of the same context re-measures
    // the same profiles, builds the same keys, and planning is pure cache
    // hits: the cold-start pass is skipped.
    let mut warm = vq_llm::Engine::builder()
        .weight_algo(VqAlgorithm::Gptvq2)
        .kv_algo(VqAlgorithm::Cq4)
        .plan_cache_path(&path)
        .build()
        .unwrap();
    let hw = warm.register_context(ctx.clone()).unwrap();
    let warm_stats = warm.cache_stats();
    assert_eq!(warm_stats.misses, 0, "warm start must not re-plan");
    assert_eq!(warm_stats.hits, 2);

    // The restored plans are identical to the cold engine's (the codec
    // round trip is bitwise, `plan_cache::persist`).
    assert_eq!(
        **cold.attention_plan(hc).unwrap(),
        **warm.attention_plan(hw).unwrap()
    );
    assert_eq!(
        **cold.linear_plan(hc).unwrap(),
        **warm.linear_plan(hw).unwrap()
    );
    let _ = std::fs::remove_file(&path);

    // Error paths are typed: saving with no configured path…
    let unconfigured = vq_llm::Engine::builder().build().unwrap();
    assert!(matches!(
        unconfigured.save_plan_cache().unwrap_err(),
        VqLlmError::Persistence { .. }
    ));
    // …and building over a corrupt cache file.
    let corrupt = std::env::temp_dir().join(format!(
        "vqllm_session_api_corrupt_{}.txt",
        std::process::id()
    ));
    std::fs::write(&corrupt, "not a plan cache\n").unwrap();
    let err = vq_llm::Engine::builder()
        .plan_cache_path(&corrupt)
        .build()
        .unwrap_err();
    assert!(matches!(err, VqLlmError::Persistence { .. }), "{err}");
    let _ = std::fs::remove_file(&corrupt);
}

#[test]
fn generate_matches_raw_pipeline() {
    let s = session();
    let via_session = s.generate(1024, 256, 16);
    let raw = vq_llm::Pipeline::new(
        GpuSpec::rtx4090(),
        vq_llm::LlamaConfig::llama_7b(),
        QuantScheme::vq_llm_4bit(),
    )
    .generate(1024, 256, 16);
    assert_eq!(
        via_session, raw,
        "facade must not change the modelled numbers"
    );
}
