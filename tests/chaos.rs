//! Fault-injection tests of the serving stack (`vq_llm::net` +
//! `vqllm_core::failpoint`): kernel panics quarantine with typed
//! reasons instead of killing the service, a dead driver unblocks every
//! waiter with [`WaitError::DriverDown`] instead of hanging, the
//! supervisor rebuilds the engine and resolves pre-crash tickets as
//! `driver_restarted`, and — the property pin — *any* small injected
//! fault schedule ends with every ticket resolved.
//!
//! Failpoints are process-global, so every test here serializes through
//! one mutex and clears the registry on the way out (even on panic).

use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

use proptest::prelude::*;

use vq_llm::core::failpoint::{self, Action};
use vq_llm::net::{spawn_driver, spawn_supervised, SupervisorConfig, WaitError};
use vq_llm::tensor::synth;
use vq_llm::{
    AdmissionConfig, ContextHandle, DecodeRequest, Engine, EngineFactory, NetRequest,
    ProfileConfig, RejectReason, RequestStatus, ServeConfig, Session, SharedContext, TicketEnd,
    VqAlgorithm,
};

const SEQ: usize = 256;
const HEAD_DIM: usize = 32;

/// Serializes failpoint-using tests (the registry is process-global)
/// and clears it when the test ends, pass or fail.
struct FaultScope(#[allow(dead_code)] MutexGuard<'static, ()>);

impl Drop for FaultScope {
    fn drop(&mut self) {
        failpoint::clear();
    }
}

fn fault_scope() -> FaultScope {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let guard = LOCK
        .get_or_init(|| Mutex::new(()))
        .lock()
        // A failed test poisons the lock; the failpoint registry is
        // still cleared by the guard, so later tests can proceed.
        .unwrap_or_else(|e| e.into_inner());
    failpoint::clear();
    FaultScope(guard)
}

/// One shared (session, quantized context) pair for the whole file —
/// quantization is the expensive part.
fn harness() -> &'static (Session, SharedContext) {
    static HARNESS: OnceLock<(Session, SharedContext)> = OnceLock::new();
    HARNESS.get_or_init(|| {
        let session = Session::builder()
            .cpu_threads(2)
            .weight_algo(VqAlgorithm::Gptvq2)
            .kv_algo(VqAlgorithm::Cq4)
            .build()
            .expect("valid session");
        let k = synth::kv_stream(SEQ, HEAD_DIM, 0.85, 31);
        let v = synth::kv_stream(SEQ, HEAD_DIM, 0.85, 32);
        let w = synth::correlated_channels(HEAD_DIM, HEAD_DIM, 4, 0.9, 33);
        let ctx = SharedContext::new(
            session.quantize_kv(&k, 1).expect("quantize K"),
            session.quantize_kv(&v, 2).expect("quantize V"),
            session.quantize_weights(&w, 3).expect("quantize W"),
        )
        .expect("valid context");
        (session, ctx)
    })
}

/// A fresh engine over the harness context, sharing the harness backend
/// so decode bytes are comparable with solo session drains.
fn engine(max_batch: usize, max_queue: usize) -> (Engine, ContextHandle) {
    let (session, ctx) = harness();
    let mut engine = Engine::builder()
        .backend(std::sync::Arc::clone(session.backend()))
        .weight_algo(VqAlgorithm::Gptvq2)
        .kv_algo(VqAlgorithm::Cq4)
        .serve_config(ServeConfig::new(max_batch, max_queue))
        .profile_config(ProfileConfig::default())
        .build()
        .expect("valid engine");
    let handle = engine.register_context(ctx.clone()).expect("register");
    (engine, handle)
}

/// An [`EngineFactory`] the supervisor can call again after a crash.
fn factory(max_batch: usize, max_queue: usize) -> EngineFactory {
    Box::new(move || {
        let (engine, handle) = engine(max_batch, max_queue);
        Ok((engine, vec![handle]))
    })
}

fn query(tenant: u64) -> Vec<f32> {
    (0..HEAD_DIM)
        .map(|d| ((tenant as usize * 13 + d) as f32 * 0.21).sin())
        .collect()
}

/// Drains one request alone through `Session::serve` — the solo
/// reference healthy requests must reproduce bitwise even with faults
/// flying around them.
fn solo_reference(req: DecodeRequest) -> Vec<Vec<f32>> {
    let (session, ctx) = harness();
    let mut srv = session
        .serve(ctx.clone(), ServeConfig::new(1, 1))
        .expect("solo server");
    let handle = srv.submit(req).expect("admitted");
    srv.run_until_drained().expect("drained");
    srv.take_output(&handle).expect("finished").steps
}

/// A kernel panic inside a batch group quarantines the group with a
/// typed `Internal` rejection; the driver keeps serving, and a healthy
/// follow-up decodes bitwise-identical to a solo drain.
#[test]
fn group_panic_quarantines_typed_and_service_recovers() {
    let _scope = fault_scope();
    let (engine, h) = engine(2, 16);
    let (client, driver) = spawn_driver(engine, AdmissionConfig::default());

    failpoint::configure("llm.step.group", Action::Panic("chaos".into()), 0, Some(1));
    let t1 = client.submit(NetRequest::new(h, DecodeRequest::new(1, query(1), 50, 3)));
    let end = client.wait(&t1).expect("driver alive");
    assert!(
        matches!(
            end,
            TicketEnd::Rejected {
                reason: RejectReason::Internal { .. },
                ..
            }
        ),
        "panicked group must reject typed internal, got {end:?}"
    );

    failpoint::clear();
    let req = DecodeRequest::new(2, query(2), 50, 3);
    let t2 = client.submit(NetRequest::new(h, req.clone()));
    let end = client.wait(&t2).expect("driver alive");
    let TicketEnd::Finished(out) = end else {
        panic!("healthy follow-up did not finish: {end:?}");
    };
    assert_eq!(out.steps, solo_reference(req), "post-fault decode diverged");

    assert!(client.metrics().quarantined >= 1, "quarantine not counted");
    let stats = client.stats().expect("driver alive");
    assert_eq!(stats.inflight_tokens, 0, "token accounting leaked");
    assert_eq!(stats.running, 0);
    driver.shutdown();
}

/// Forced KV exhaustion mid-decode quarantines exactly the offending
/// request (typed `KvCapacity`); its batch-mate finishes and matches the
/// solo reference bitwise.
#[test]
fn kv_exhaustion_quarantines_exactly_one_request() {
    let _scope = fault_scope();
    let (engine, h) = engine(2, 16);
    let (client, driver) = spawn_driver(engine, AdmissionConfig::default());

    // The append failpoint fires once: the first request to append after
    // step 1 is quarantined, every other append proceeds normally.
    failpoint::configure("llm.step.append", Action::Error("chaos".into()), 0, Some(1));
    let victim = client.submit(NetRequest::new(h, DecodeRequest::new(1, query(1), 50, 4)));
    let survivor_req = DecodeRequest::new(2, query(2), 50, 4);
    let survivor = client.submit(NetRequest::new(h, survivor_req.clone()));

    let v_end = client.wait(&victim).expect("driver alive");
    assert!(
        matches!(
            v_end,
            TicketEnd::Rejected {
                reason: RejectReason::KvCapacity { .. },
                ..
            }
        ),
        "forced exhaustion must reject typed kv_capacity, got {v_end:?}"
    );
    let s_end = client.wait(&survivor).expect("driver alive");
    let TicketEnd::Finished(out) = s_end else {
        panic!("batch-mate of the quarantined request lost: {s_end:?}");
    };
    assert_eq!(
        out.steps,
        solo_reference(survivor_req),
        "survivor decode diverged from solo"
    );

    assert_eq!(client.metrics().quarantined, 1, "exactly one quarantine");
    let stats = client.stats().expect("driver alive");
    assert_eq!(stats.inflight_tokens, 0, "token accounting leaked");
    driver.shutdown();
}

/// An unsupervised driver that dies mid-decode unblocks waiters with
/// `DriverDown` (never hangs), `poll` reports a typed internal
/// rejection, and later submits resolve immediately as refused.
#[test]
fn driver_death_unblocks_wait_with_driver_down() {
    let _scope = fault_scope();
    let (engine, h) = engine(2, 16);
    let (client, driver) = spawn_driver(engine, AdmissionConfig::default());

    // skip=1: the first step runs (so the wait below is parked on a
    // genuinely in-flight request), the second kills the driver.
    failpoint::configure("net.driver.step", Action::Panic("kill".into()), 1, Some(1));
    let t = client.submit(NetRequest::new(h, DecodeRequest::new(1, query(1), 50, 8)));
    let end = client.wait(&t);
    assert!(
        matches!(end, Err(WaitError::DriverDown)),
        "wait on a dead driver must return DriverDown, got {end:?}"
    );
    assert!(
        matches!(
            client.poll(&t),
            RequestStatus::Rejected {
                reason: RejectReason::Internal {
                    what: "driver down"
                }
            }
        ),
        "poll must surface the death as a typed internal rejection"
    );

    // The cell table is latched down, so a post-mortem submit resolves
    // synchronously instead of parking a waiter forever.
    let t2 = client.submit(NetRequest::new(h, DecodeRequest::new(2, query(2), 50, 1)));
    let end2 = client.wait_timeout(&t2, Duration::ZERO);
    assert!(
        matches!(
            end2,
            Ok(TicketEnd::Rejected {
                reason: RejectReason::Invalid {
                    what: "driver stopped"
                },
                ..
            })
        ),
        "post-mortem submit must refuse immediately, got {end2:?}"
    );
    driver.shutdown(); // idempotent on a dead driver
}

/// A supervised driver survives a forced kill: tickets alive across the
/// crash resolve as `DriverRestarted` with a computed retry hint, the
/// rebuilt engine serves bitwise-correct decodes against republished
/// context handles, and the restart is counted.
#[test]
fn supervisor_restarts_driver_and_resolves_live_tickets() {
    let _scope = fault_scope();
    let (client, driver, handles) = spawn_supervised(
        factory(2, 16),
        AdmissionConfig::default(),
        SupervisorConfig::default(),
    )
    .expect("initial engine build");
    let h = handles.get(0).expect("context published");

    failpoint::configure("net.driver.step", Action::Panic("kill".into()), 0, Some(1));
    let t1 = client.submit(NetRequest::new(h, DecodeRequest::new(1, query(1), 50, 4)));
    let end = client.wait(&t1).expect("supervisor keeps the driver alive");
    let TicketEnd::Rejected {
        reason: RejectReason::DriverRestarted { retry_after_ms },
        ..
    } = end
    else {
        panic!("pre-crash ticket must resolve driver_restarted, got {end:?}");
    };
    assert!(retry_after_ms >= 1, "retry hint must be at least 1ms");

    // The handle table was republished by the restart; the warm engine
    // serves a healthy request bitwise-equal to solo.
    let h = handles.get(0).expect("context republished");
    let req = DecodeRequest::new(2, query(2), 50, 3);
    let t2 = client.submit(NetRequest::new(h, req.clone()));
    let end = client.wait(&t2).expect("driver alive after restart");
    let TicketEnd::Finished(out) = end else {
        panic!("post-restart request did not finish: {end:?}");
    };
    assert_eq!(
        out.steps,
        solo_reference(req),
        "post-restart decode diverged"
    );

    assert_eq!(client.metrics().restarts, 1, "restart not counted");
    let stats = client.stats().expect("driver alive");
    assert_eq!(stats.inflight_tokens, 0, "token accounting leaked");
    driver.shutdown();
}

/// Draining while a fault storm is quarantining work resolves every
/// ticket — completed, quarantined, or cancelled, never stuck — and the
/// drain call itself returns.
#[test]
fn drain_during_fault_resolves_every_ticket() {
    let _scope = fault_scope();
    let (engine, h) = engine(2, 8);
    let (client, driver) = spawn_driver(engine, AdmissionConfig::default());

    failpoint::configure("llm.step.group", Action::Panic("chaos".into()), 0, Some(1));
    let tickets: Vec<_> = (0..4)
        .map(|i| client.submit(NetRequest::new(h, DecodeRequest::new(i, query(i), 50, 3))))
        .collect();
    let report = driver.drain(Duration::from_secs(30));

    let mut finished = 0usize;
    let mut rejected = 0usize;
    for (i, t) in tickets.iter().enumerate() {
        match client.wait_timeout(t, Duration::from_secs(5)) {
            Ok(TicketEnd::Finished(_)) => finished += 1,
            Ok(TicketEnd::Rejected { .. }) => rejected += 1,
            Err(WaitError::DriverDown) => rejected += 1,
            Err(WaitError::Timeout) => panic!("ticket {i} stuck across drain"),
        }
    }
    assert_eq!(finished + rejected, 4, "every ticket accounted for");
    assert_eq!(
        finished, report.completed,
        "drain report disagrees with ticket resolutions"
    );
    assert!(rejected >= 1, "the injected group fault rejected nobody");
}

/// Splitmix64 — deterministic per-(seed, index) request variety for the
/// property test below.
fn mix(seed: u64, i: u64) -> u64 {
    let mut z = seed
        .wrapping_mul(0x9e3779b97f4a7c15)
        .wrapping_add(i.wrapping_mul(0xbf58476d1ce4e5b9));
    z ^= z >> 30;
    z = z.wrapping_mul(0xbf58476d1ce4e5b9);
    z ^= z >> 27;
    z = z.wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

proptest! {
    /// The liveness pin: under ANY small injected fault schedule —
    /// group panics, forced KV exhaustion, driver kills, injected
    /// delays, any skip/times phasing — a supervised driver resolves
    /// every ticket (Finished | Rejected | DriverDown). Nothing is ever
    /// left stuck pending.
    #[test]
    fn any_fault_schedule_resolves_every_ticket(
        seed in 0u64..1_000_000,
        site_ix in 0usize..3,
        kind_ix in 0usize..3,
        skip in 0u64..3,
        times in 1u64..3,
        nreq in 1usize..5,
    ) {
        let _scope = fault_scope();
        let site = ["llm.step.group", "llm.step.append", "net.driver.step"][site_ix];
        let action = match kind_ix {
            0 => Action::Panic("chaos".into()),
            1 => Action::Error("chaos".into()),
            _ => Action::DelayMs(2),
        };
        let (client, driver, handles) = spawn_supervised(
            factory(2, 16),
            AdmissionConfig::default(),
            SupervisorConfig::default(),
        )
        .expect("initial engine build");
        failpoint::configure(site, action, skip, Some(times));

        let h = handles.get(0).expect("context published");
        let tickets: Vec<_> = (0..nreq)
            .map(|i| {
                let r = mix(seed, i as u64);
                let gen = 1 + (r % 3) as usize;
                client.submit(NetRequest::new(h, DecodeRequest::new(r, query(r % 7), 50, gen)))
            })
            .collect();

        for (i, t) in tickets.iter().enumerate() {
            let end = client.wait_timeout(t, Duration::from_secs(60));
            prop_assert!(
                !matches!(end, Err(WaitError::Timeout)),
                "ticket {} stuck under schedule {}={:?} skip={} times={}",
                i, site, kind_ix, skip, times
            );
        }
        failpoint::clear();
        driver.shutdown();
    }
}
