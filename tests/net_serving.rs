//! End-to-end tests of the network serving front end (`vq_llm::net`):
//! driver-thread lifecycle, weighted fairness under contention, SLO
//! deadline rejection, cancellation, and — the acceptance pin — a
//! loopback TCP client whose streamed token frames are **bitwise**
//! identical to a solo in-process `Session` drain of the same requests.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::OnceLock;
use std::time::Duration;

use vq_llm::net::json::{self, Json};
use vq_llm::net::{proto, spawn_driver};
use vq_llm::tensor::synth;
use vq_llm::{
    AdmissionConfig, ContextHandle, DecodeRequest, Engine, NetRequest, NetServer, ProfileConfig,
    RejectReason, RequestStatus, ServeConfig, Session, SharedContext, StreamEvent, TicketEnd,
    VqAlgorithm,
};

const SEQ: usize = 256;
const HEAD_DIM: usize = 32;

/// One shared (session, quantized context) pair for the whole file —
/// quantization is the expensive part.
fn harness() -> &'static (Session, SharedContext) {
    static HARNESS: OnceLock<(Session, SharedContext)> = OnceLock::new();
    HARNESS.get_or_init(|| {
        let session = Session::builder()
            .cpu_threads(2)
            .weight_algo(VqAlgorithm::Gptvq2)
            .kv_algo(VqAlgorithm::Cq4)
            .build()
            .expect("valid session");
        let k = synth::kv_stream(SEQ, HEAD_DIM, 0.85, 31);
        let v = synth::kv_stream(SEQ, HEAD_DIM, 0.85, 32);
        let w = synth::correlated_channels(HEAD_DIM, HEAD_DIM, 4, 0.9, 33);
        let ctx = SharedContext::new(
            session.quantize_kv(&k, 1).expect("quantize K"),
            session.quantize_kv(&v, 2).expect("quantize V"),
            session.quantize_weights(&w, 3).expect("quantize W"),
        )
        .expect("valid context");
        (session, ctx)
    })
}

/// A fresh engine over the harness context, sharing the harness backend
/// so decode bytes are comparable with solo session drains.
fn engine(max_batch: usize, max_queue: usize) -> (Engine, ContextHandle) {
    let (session, ctx) = harness();
    let mut engine = Engine::builder()
        .backend(std::sync::Arc::clone(session.backend()))
        .weight_algo(VqAlgorithm::Gptvq2)
        .kv_algo(VqAlgorithm::Cq4)
        .serve_config(ServeConfig::new(max_batch, max_queue))
        .profile_config(ProfileConfig::default())
        .build()
        .expect("valid engine");
    let handle = engine.register_context(ctx.clone()).expect("register");
    (engine, handle)
}

fn query(tenant: u64) -> Vec<f32> {
    (0..HEAD_DIM)
        .map(|d| ((tenant as usize * 13 + d) as f32 * 0.21).sin())
        .collect()
}

/// Drains one request alone through `Session::serve` — the solo
/// reference the driven/TCP paths must reproduce bitwise.
fn solo_reference(req: DecodeRequest) -> Vec<Vec<f32>> {
    let (session, ctx) = harness();
    let mut srv = session
        .serve(ctx.clone(), ServeConfig::new(1, 1))
        .expect("solo server");
    let handle = srv.submit(req).expect("admitted");
    srv.run_until_drained().expect("drained");
    srv.take_output(&handle).expect("finished").steps
}

/// The driver completes work submitted through the thread-safe client,
/// resolves waits, streams tokens in order, and its decode bytes match a
/// solo session drain.
#[test]
fn driver_completes_streams_and_matches_solo() {
    let (engine, h) = engine(2, 16);
    let (client, driver) = spawn_driver(engine, AdmissionConfig::default());

    let req = DecodeRequest::new(7, query(7), 20, 3);
    let (ev_tx, ev_rx) = std::sync::mpsc::channel();
    let ticket = client.submit_streaming(
        NetRequest::new(h, req.clone()),
        Box::new(move |ev: StreamEvent| {
            let _ = ev_tx.send(ev);
        }),
    );
    let plain = client.submit(NetRequest::new(h, DecodeRequest::new(8, query(8), 50, 2)));

    let end = client.wait(&ticket);
    let TicketEnd::Finished(out) = end else {
        panic!("streamed request did not finish: {end:?}");
    };
    assert_eq!(out.steps.len(), 3);
    assert_eq!(out.steps, solo_reference(req), "driver diverged from solo");

    // Sink saw: accepted, token 0..3 (ascending, bitwise equal), done.
    let events: Vec<StreamEvent> = ev_rx.try_iter().collect();
    assert!(matches!(events[0], StreamEvent::Accepted { .. }));
    let tokens: Vec<(usize, Vec<f32>)> = events
        .iter()
        .filter_map(|e| match e {
            StreamEvent::Token { index, value, .. } => Some((*index, value.clone())),
            _ => None,
        })
        .collect();
    assert_eq!(tokens.len(), 3);
    for (i, (index, value)) in tokens.iter().enumerate() {
        assert_eq!(*index, i, "tokens arrive in decode order");
        assert_eq!(value, &out.steps[i], "streamed row differs from output");
    }
    assert!(matches!(
        events.last(),
        Some(StreamEvent::Done { tokens: 3, .. })
    ));

    let plain_end = client
        .wait_timeout(&plain, Duration::from_secs(30))
        .expect("resolves well before the deadline");
    assert!(matches!(plain_end, TicketEnd::Finished(_)));
    assert_eq!(client.poll(&plain), RequestStatus::Finished { tokens: 2 });

    let stats = client.stats().expect("driver alive");
    assert_eq!(stats.server.completed, 2);
    let m = client.metrics();
    assert_eq!(m.admitted, 2);
    assert_eq!(m.decoded_tokens, 5);
    assert!(m.steps > 0);
    driver.shutdown();
}

/// Weighted fairness under contention: a weight-2 tenant backlogged
/// against a weight-1 tenant is served ~2:1. A long blocker request pins
/// the engine's single slot while both tenants queue, so the service
/// order is decided entirely by the fair queue.
#[test]
fn weighted_tenants_are_served_two_to_one() {
    let (engine, h) = engine(1, 4);
    let cfg = AdmissionConfig {
        weights: vec![(1, 2), (2, 1)],
        ..AdmissionConfig::default()
    };
    let (client, driver) = spawn_driver(engine, cfg);

    // The blocker holds the only decode slot for 64 steps — long enough
    // for every contended submission below to be queued behind it.
    let blocker = client.submit(NetRequest::new(h, DecodeRequest::new(99, query(99), 8, 64)));

    let mut tickets = Vec::new();
    for i in 0..12 {
        for tenant in [1u64, 2] {
            let req = DecodeRequest::new(tenant, query(tenant), 10 + i, 2);
            tickets.push((tenant, client.submit(NetRequest::new(h, req))));
        }
    }

    assert!(matches!(client.wait(&blocker), TicketEnd::Finished(_)));
    let mut served: Vec<(u64, u64)> = Vec::new(); // (finished_step, tenant)
    for (tenant, ticket) in &tickets {
        match client.wait(ticket) {
            TicketEnd::Finished(out) => served.push((out.finished_step, *tenant)),
            other => panic!("tenant {tenant} did not finish: {other:?}"),
        }
    }
    served.sort_unstable();

    // With one slot, completion order == grant order. Every prefix of the
    // grant order stays within one grant of the ideal 2:1 share, so check
    // a mid-drain window: of the first 9 grants, tenant 1 gets 6 ± 1.
    let first9: Vec<u64> = served.iter().take(9).map(|&(_, t)| t).collect();
    let ones = first9.iter().filter(|&&t| t == 1).count();
    assert!(
        (5..=7).contains(&ones),
        "weight-2 tenant got {ones}/9 early grants (expected ~6): {first9:?}"
    );
    // Everyone finishes — weighted fairness never starves the light
    // tenant.
    assert_eq!(served.len(), 24);

    let m = client.metrics();
    let t1 = m.tenants.iter().find(|t| t.tenant == 1).expect("tenant 1");
    let t2 = m.tenants.iter().find(|t| t.tenant == 2).expect("tenant 2");
    assert_eq!(t1.tokens, 24);
    assert_eq!(t2.tokens, 24);
    driver.shutdown();
}

/// SLO admission: an impossible deadline rejects immediately — typed,
/// with a positive computed retry-after — and never enters the queue.
#[test]
fn impossible_deadline_rejects_immediately_with_retry_after() {
    let (engine, h) = engine(8, 64);
    let (client, driver) = spawn_driver(engine, AdmissionConfig::default());

    let req = DecodeRequest::new(1, query(1), 10, 64);
    let ticket = client.submit(NetRequest::new(h, req).deadline_ms(0));
    // Resolution is immediate (no decode work pending), so a short wait
    // is generous.
    let end = client
        .wait_timeout(&ticket, Duration::from_secs(10))
        .expect("deadline rejections resolve immediately");
    match end {
        TicketEnd::Rejected {
            reason: RejectReason::Deadline { retry_after_ms },
            retry_after_ms: retry,
        } => {
            assert!(retry_after_ms >= 1, "retry_after_ms must be positive");
            assert_eq!(retry, retry_after_ms);
        }
        other => panic!("expected a typed deadline rejection, got {other:?}"),
    }
    assert!(matches!(
        client.poll(&ticket),
        RequestStatus::Rejected {
            reason: RejectReason::Deadline { .. }
        }
    ));

    // A generous deadline admits and completes.
    let ok = client
        .submit(NetRequest::new(h, DecodeRequest::new(2, query(2), 10, 2)).deadline_ms(60_000));
    assert!(matches!(client.wait(&ok), TicketEnd::Finished(_)));

    let m = client.metrics();
    assert_eq!(
        m.rejected.iter().find(|(c, _)| *c == "deadline"),
        Some(&("deadline", 1))
    );
    assert_eq!(m.admitted, 1);
    driver.shutdown();
}

/// Cancellation through the driver: a queued request resolves to the
/// typed `Cancelled` tombstone and frees its fair-queue entry.
#[test]
fn cancel_through_the_driver_resolves_typed() {
    let (engine, h) = engine(1, 8);
    let (client, driver) = spawn_driver(engine, AdmissionConfig::default());

    let blocker = client.submit(NetRequest::new(h, DecodeRequest::new(9, query(9), 8, 32)));
    let victim = client.submit(NetRequest::new(h, DecodeRequest::new(1, query(1), 10, 4)));
    client.cancel(&victim);
    let end = client.wait(&victim);
    assert!(
        matches!(
            end,
            TicketEnd::Rejected {
                reason: RejectReason::Cancelled,
                ..
            }
        ),
        "{end:?}"
    );
    assert!(matches!(client.wait(&blocker), TicketEnd::Finished(_)));
    driver.shutdown();
}

/// The acceptance pin: tokens streamed over a real TCP socket are
/// bitwise identical to a solo `Session` drain of the same request. Also
/// exercises the `poll`, `cancel`, and `stats` verbs end to end.
#[test]
fn loopback_tcp_streamed_tokens_are_bitwise_equal_to_solo_session() {
    let (engine, h) = engine(2, 16);
    let server = NetServer::bind(
        engine,
        vec![h],
        AdmissionConfig::default(),
        ("127.0.0.1", 0),
    )
    .expect("bind loopback");
    let addr = server.local_addr();

    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    let mut writer = stream.try_clone().expect("clone socket");
    let mut reader = BufReader::new(stream);
    let read_frame = |reader: &mut BufReader<TcpStream>| -> Json {
        let mut line = String::new();
        reader.read_line(&mut line).expect("server frame");
        json::parse(line.trim()).unwrap_or_else(|e| panic!("bad frame {line:?}: {e}"))
    };

    // Three ragged streaming requests on one connection.
    let specs: [(u64, usize, usize); 3] = [(1, 30, 4), (2, 150, 2), (3, 77, 5)];
    for &(tenant, context_len, gen) in &specs {
        let line = proto::submit_line(0, tenant, &query(tenant), context_len, gen, 0, None, true);
        writeln!(writer, "{line}").expect("send submit");
    }

    // Collect frames until every request is done. Ids are assigned in
    // submission order; `accepted` events confirm the mapping.
    let mut accepted_ids: Vec<u64> = Vec::new();
    let mut tokens: std::collections::HashMap<u64, Vec<(usize, Vec<f32>)>> =
        std::collections::HashMap::new();
    let mut done = std::collections::HashSet::new();
    while done.len() < specs.len() {
        let v = read_frame(&mut reader);
        let event = v.get("event").and_then(Json::as_str).expect("event");
        let id = v.get("id").and_then(Json::as_u64).expect("id");
        match event {
            "accepted" => accepted_ids.push(id),
            "token" => {
                let index = v.get("index").and_then(Json::as_usize).expect("index");
                let value = v.get("value").and_then(Json::as_f32s).expect("value");
                tokens.entry(id).or_default().push((index, value));
            }
            "done" => {
                assert!(done.insert(id), "duplicate done for {id}");
            }
            other => panic!("unexpected event {other:?}: {v:?}"),
        }
    }
    assert_eq!(accepted_ids.len(), specs.len());

    for (&(tenant, context_len, gen), &id) in specs.iter().zip(&accepted_ids) {
        let got = tokens.remove(&id).unwrap_or_default();
        assert_eq!(got.len(), gen, "tenant {tenant}: token frame count");
        for (i, (index, _)) in got.iter().enumerate() {
            assert_eq!(*index, i, "tenant {tenant}: frames in decode order");
        }
        let rows: Vec<Vec<f32>> = got.into_iter().map(|(_, v)| v).collect();
        let solo = solo_reference(DecodeRequest::new(tenant, query(tenant), context_len, gen));
        assert_eq!(
            rows, solo,
            "tenant {tenant}: TCP-streamed tokens diverged bitwise from solo session"
        );
    }

    // poll: a finished request reports its state and decoded rows.
    let first = accepted_ids[0];
    writeln!(writer, "{{\"verb\":\"poll\",\"id\":{first}}}").expect("send poll");
    let status = read_frame(&mut reader);
    assert_eq!(status.get("event").and_then(Json::as_str), Some("status"));
    assert_eq!(status.get("state").and_then(Json::as_str), Some("finished"));
    assert_eq!(
        status.get("tokens").and_then(Json::as_usize),
        Some(specs[0].2)
    );
    let steps = status.get("steps").expect("finished poll carries rows");
    match steps {
        Json::Arr(rows) => assert_eq!(rows.len(), specs[0].2),
        other => panic!("steps not an array: {other:?}"),
    }

    // poll of an unknown id is typed, not an error.
    writeln!(writer, "{{\"verb\":\"poll\",\"id\":999}}").expect("send poll");
    let unknown = read_frame(&mut reader);
    assert_eq!(unknown.get("state").and_then(Json::as_str), Some("unknown"));

    // deadline rejection over the wire: typed, with retry_after_ms > 0.
    let line = proto::submit_line(0, 5, &query(5), 10, 64, 0, Some(0), false);
    writeln!(writer, "{line}").expect("send submit");
    let rej = read_frame(&mut reader);
    assert_eq!(rej.get("event").and_then(Json::as_str), Some("rejected"));
    assert_eq!(rej.get("reason").and_then(Json::as_str), Some("deadline"));
    assert!(
        rej.get("retry_after_ms")
            .and_then(Json::as_u64)
            .expect("retry")
            >= 1,
        "{rej:?}"
    );

    // stats: scheduler counters + metrics snapshot, all JSON.
    writeln!(writer, "{{\"verb\":\"stats\"}}").expect("send stats");
    let stats = read_frame(&mut reader);
    assert_eq!(stats.get("event").and_then(Json::as_str), Some("stats"));
    let srv = stats.get("server").expect("server object");
    assert_eq!(srv.get("completed").and_then(Json::as_u64), Some(3));
    let metrics = stats.get("metrics").expect("metrics object");
    assert_eq!(
        metrics.get("rejected_deadline").and_then(Json::as_u64),
        Some(1)
    );
    assert!(metrics.get("step_latency_p99_us").is_some());

    // malformed frames get an error event, and the connection survives.
    writeln!(writer, "not json").expect("send garbage");
    let err = read_frame(&mut reader);
    assert_eq!(err.get("event").and_then(Json::as_str), Some("error"));

    server.shutdown();
}
