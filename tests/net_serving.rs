//! End-to-end tests of the network serving front end (`vq_llm::net`):
//! driver-thread lifecycle, weighted fairness under contention, SLO
//! deadline rejection, cancellation, and — the acceptance pin — a
//! loopback TCP client whose streamed token frames are **bitwise**
//! identical to a solo in-process `Session` drain of the same requests.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::OnceLock;
use std::time::Duration;

use vq_llm::net::json::{self, Json};
use vq_llm::net::{loopback_with, proto, spawn_driver, NetConfig};
use vq_llm::tensor::synth;
use vq_llm::{
    AdmissionConfig, ContextHandle, DecodeRequest, Engine, NetRequest, NetServer, ProfileConfig,
    RateLimitConfig, RejectReason, RequestStatus, ServeConfig, Session, SharedContext, StreamEvent,
    TicketEnd, VqAlgorithm,
};

const SEQ: usize = 256;
const HEAD_DIM: usize = 32;

/// One shared (session, quantized context) pair for the whole file —
/// quantization is the expensive part.
fn harness() -> &'static (Session, SharedContext) {
    static HARNESS: OnceLock<(Session, SharedContext)> = OnceLock::new();
    HARNESS.get_or_init(|| {
        let session = Session::builder()
            .cpu_threads(2)
            .weight_algo(VqAlgorithm::Gptvq2)
            .kv_algo(VqAlgorithm::Cq4)
            .build()
            .expect("valid session");
        let k = synth::kv_stream(SEQ, HEAD_DIM, 0.85, 31);
        let v = synth::kv_stream(SEQ, HEAD_DIM, 0.85, 32);
        let w = synth::correlated_channels(HEAD_DIM, HEAD_DIM, 4, 0.9, 33);
        let ctx = SharedContext::new(
            session.quantize_kv(&k, 1).expect("quantize K"),
            session.quantize_kv(&v, 2).expect("quantize V"),
            session.quantize_weights(&w, 3).expect("quantize W"),
        )
        .expect("valid context");
        (session, ctx)
    })
}

/// A fresh engine over the harness context, sharing the harness backend
/// so decode bytes are comparable with solo session drains.
fn engine(max_batch: usize, max_queue: usize) -> (Engine, ContextHandle) {
    let (session, ctx) = harness();
    let mut engine = Engine::builder()
        .backend(std::sync::Arc::clone(session.backend()))
        .weight_algo(VqAlgorithm::Gptvq2)
        .kv_algo(VqAlgorithm::Cq4)
        .serve_config(ServeConfig::new(max_batch, max_queue))
        .profile_config(ProfileConfig::default())
        .build()
        .expect("valid engine");
    let handle = engine.register_context(ctx.clone()).expect("register");
    (engine, handle)
}

fn query(tenant: u64) -> Vec<f32> {
    (0..HEAD_DIM)
        .map(|d| ((tenant as usize * 13 + d) as f32 * 0.21).sin())
        .collect()
}

/// Drains one request alone through `Session::serve` — the solo
/// reference the driven/TCP paths must reproduce bitwise.
fn solo_reference(req: DecodeRequest) -> Vec<Vec<f32>> {
    let (session, ctx) = harness();
    let mut srv = session
        .serve(ctx.clone(), ServeConfig::new(1, 1))
        .expect("solo server");
    let handle = srv.submit(req).expect("admitted");
    srv.run_until_drained().expect("drained");
    srv.take_output(&handle).expect("finished").steps
}

/// The driver completes work submitted through the thread-safe client,
/// resolves waits, streams tokens in order, and its decode bytes match a
/// solo session drain.
#[test]
fn driver_completes_streams_and_matches_solo() {
    let (engine, h) = engine(2, 16);
    let (client, driver) = spawn_driver(engine, AdmissionConfig::default());

    let req = DecodeRequest::new(7, query(7), 20, 3);
    let (ev_tx, ev_rx) = std::sync::mpsc::channel();
    let ticket = client.submit_streaming(
        NetRequest::new(h, req.clone()),
        Box::new(move |ev: StreamEvent| {
            let _ = ev_tx.send(ev);
        }),
    );
    let plain = client.submit(NetRequest::new(h, DecodeRequest::new(8, query(8), 50, 2)));

    let end = client.wait(&ticket).expect("driver alive");
    let TicketEnd::Finished(out) = end else {
        panic!("streamed request did not finish: {end:?}");
    };
    assert_eq!(out.steps.len(), 3);
    assert_eq!(out.steps, solo_reference(req), "driver diverged from solo");

    // Sink saw: accepted, token 0..3 (ascending, bitwise equal), done.
    // The ticket resolves just before the terminal sink event fires (so
    // poll-after-done is never stale), so drain the channel up to `done`
    // instead of snapshotting it.
    let mut events: Vec<StreamEvent> = Vec::new();
    loop {
        let ev = ev_rx
            .recv_timeout(Duration::from_secs(10))
            .expect("sink event");
        let done = matches!(ev, StreamEvent::Done { .. });
        events.push(ev);
        if done {
            break;
        }
    }
    assert!(matches!(events[0], StreamEvent::Accepted { .. }));
    let tokens: Vec<(usize, Vec<f32>)> = events
        .iter()
        .filter_map(|e| match e {
            StreamEvent::Token { index, value, .. } => Some((*index, value.clone())),
            _ => None,
        })
        .collect();
    assert_eq!(tokens.len(), 3);
    for (i, (index, value)) in tokens.iter().enumerate() {
        assert_eq!(*index, i, "tokens arrive in decode order");
        assert_eq!(value, &out.steps[i], "streamed row differs from output");
    }
    assert!(matches!(
        events.last(),
        Some(StreamEvent::Done { tokens: 3, .. })
    ));

    let plain_end = client
        .wait_timeout(&plain, Duration::from_secs(30))
        .expect("resolves well before the deadline");
    assert!(matches!(plain_end, TicketEnd::Finished(_)));
    assert_eq!(client.poll(&plain), RequestStatus::Finished { tokens: 2 });

    let stats = client.stats().expect("driver alive");
    assert_eq!(stats.server.completed, 2);
    let m = client.metrics();
    assert_eq!(m.admitted, 2);
    assert_eq!(m.decoded_tokens, 5);
    assert!(m.steps > 0);
    driver.shutdown();
}

/// Weighted fairness under contention: a weight-2 tenant backlogged
/// against a weight-1 tenant is served ~2:1. A long blocker request pins
/// the engine's single slot while both tenants queue, so the service
/// order is decided entirely by the fair queue.
#[test]
fn weighted_tenants_are_served_two_to_one() {
    let (engine, h) = engine(1, 4);
    let cfg = AdmissionConfig {
        weights: vec![(1, 2), (2, 1)],
        ..AdmissionConfig::default()
    };
    let (client, driver) = spawn_driver(engine, cfg);

    // The blocker holds the only decode slot for 64 steps — long enough
    // for every contended submission below to be queued behind it.
    let blocker = client.submit(NetRequest::new(h, DecodeRequest::new(99, query(99), 8, 64)));

    let mut tickets = Vec::new();
    for i in 0..12 {
        for tenant in [1u64, 2] {
            let req = DecodeRequest::new(tenant, query(tenant), 10 + i, 2);
            tickets.push((tenant, client.submit(NetRequest::new(h, req))));
        }
    }

    assert!(matches!(client.wait(&blocker), Ok(TicketEnd::Finished(_))));
    let mut served: Vec<(u64, u64)> = Vec::new(); // (finished_step, tenant)
    for (tenant, ticket) in &tickets {
        match client.wait(ticket).expect("driver alive") {
            TicketEnd::Finished(out) => served.push((out.finished_step, *tenant)),
            other => panic!("tenant {tenant} did not finish: {other:?}"),
        }
    }
    served.sort_unstable();

    // With one slot, completion order == grant order. Every prefix of the
    // grant order stays within one grant of the ideal 2:1 share, so check
    // a mid-drain window: of the first 9 grants, tenant 1 gets 6 ± 1.
    let first9: Vec<u64> = served.iter().take(9).map(|&(_, t)| t).collect();
    let ones = first9.iter().filter(|&&t| t == 1).count();
    assert!(
        (5..=7).contains(&ones),
        "weight-2 tenant got {ones}/9 early grants (expected ~6): {first9:?}"
    );
    // Everyone finishes — weighted fairness never starves the light
    // tenant.
    assert_eq!(served.len(), 24);

    let m = client.metrics();
    let t1 = m.tenants.iter().find(|t| t.tenant == 1).expect("tenant 1");
    let t2 = m.tenants.iter().find(|t| t.tenant == 2).expect("tenant 2");
    assert_eq!(t1.tokens, 24);
    assert_eq!(t2.tokens, 24);
    driver.shutdown();
}

/// SLO admission: an impossible deadline rejects immediately — typed,
/// with a positive computed retry-after — and never enters the queue.
#[test]
fn impossible_deadline_rejects_immediately_with_retry_after() {
    let (engine, h) = engine(8, 64);
    let (client, driver) = spawn_driver(engine, AdmissionConfig::default());

    let req = DecodeRequest::new(1, query(1), 10, 64);
    let ticket = client.submit(NetRequest::new(h, req).deadline_ms(0));
    // Resolution is immediate (no decode work pending), so a short wait
    // is generous.
    let end = client
        .wait_timeout(&ticket, Duration::from_secs(10))
        .expect("deadline rejections resolve immediately");
    match end {
        TicketEnd::Rejected {
            reason: RejectReason::Deadline { retry_after_ms },
            retry_after_ms: retry,
        } => {
            assert!(retry_after_ms >= 1, "retry_after_ms must be positive");
            assert_eq!(retry, retry_after_ms);
        }
        other => panic!("expected a typed deadline rejection, got {other:?}"),
    }
    assert!(matches!(
        client.poll(&ticket),
        RequestStatus::Rejected {
            reason: RejectReason::Deadline { .. }
        }
    ));

    // A generous deadline admits and completes.
    let ok = client
        .submit(NetRequest::new(h, DecodeRequest::new(2, query(2), 10, 2)).deadline_ms(60_000));
    assert!(matches!(client.wait(&ok), Ok(TicketEnd::Finished(_))));

    let m = client.metrics();
    assert_eq!(
        m.rejected.iter().find(|(c, _)| *c == "deadline"),
        Some(&("deadline", 1))
    );
    assert_eq!(m.admitted, 1);
    driver.shutdown();
}

/// Cancellation through the driver: a queued request resolves to the
/// typed `Cancelled` tombstone and frees its fair-queue entry.
#[test]
fn cancel_through_the_driver_resolves_typed() {
    let (engine, h) = engine(1, 8);
    let (client, driver) = spawn_driver(engine, AdmissionConfig::default());

    let blocker = client.submit(NetRequest::new(h, DecodeRequest::new(9, query(9), 8, 32)));
    let victim = client.submit(NetRequest::new(h, DecodeRequest::new(1, query(1), 10, 4)));
    client.cancel(&victim);
    let end = client.wait(&victim).expect("driver alive");
    assert!(
        matches!(
            end,
            TicketEnd::Rejected {
                reason: RejectReason::Cancelled,
                ..
            }
        ),
        "{end:?}"
    );
    assert!(matches!(client.wait(&blocker), Ok(TicketEnd::Finished(_))));
    driver.shutdown();
}

/// The acceptance pin: tokens streamed over a real TCP socket are
/// bitwise identical to a solo `Session` drain of the same request. Also
/// exercises the `poll`, `cancel`, and `stats` verbs end to end.
#[test]
fn loopback_tcp_streamed_tokens_are_bitwise_equal_to_solo_session() {
    let (engine, h) = engine(2, 16);
    let server = NetServer::bind(
        engine,
        vec![h],
        AdmissionConfig::default(),
        ("127.0.0.1", 0),
    )
    .expect("bind loopback");
    let addr = server.local_addr();

    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    let mut writer = stream.try_clone().expect("clone socket");
    let mut reader = BufReader::new(stream);
    let read_frame = |reader: &mut BufReader<TcpStream>| -> Json {
        let mut line = String::new();
        reader.read_line(&mut line).expect("server frame");
        json::parse(line.trim()).unwrap_or_else(|e| panic!("bad frame {line:?}: {e}"))
    };

    // The handshake comes first: protocol version + line cap.
    let hello = read_frame(&mut reader);
    assert_eq!(hello.get("event").and_then(Json::as_str), Some("hello"));
    assert_eq!(
        hello.get("proto").and_then(Json::as_u64),
        Some(vq_llm::net::PROTO_VERSION)
    );
    assert!(hello
        .get("line_length_cap")
        .and_then(Json::as_u64)
        .is_some());

    // ping/pong keepalive round-trips on the same connection.
    writeln!(writer, "{{\"verb\":\"ping\"}}").expect("send ping");
    let pong = read_frame(&mut reader);
    assert_eq!(pong.get("event").and_then(Json::as_str), Some("pong"));

    // Three ragged streaming requests on one connection.
    let specs: [(u64, usize, usize); 3] = [(1, 30, 4), (2, 150, 2), (3, 77, 5)];
    for &(tenant, context_len, gen) in &specs {
        let line = proto::submit_line(0, tenant, &query(tenant), context_len, gen, 0, None, true);
        writeln!(writer, "{line}").expect("send submit");
    }

    // Collect frames until every request is done. Ids are assigned in
    // submission order; `accepted` events confirm the mapping.
    let mut accepted_ids: Vec<u64> = Vec::new();
    let mut tokens: std::collections::HashMap<u64, Vec<(usize, Vec<f32>)>> =
        std::collections::HashMap::new();
    let mut done = std::collections::HashSet::new();
    while done.len() < specs.len() {
        let v = read_frame(&mut reader);
        let event = v.get("event").and_then(Json::as_str).expect("event");
        let id = v.get("id").and_then(Json::as_u64).expect("id");
        match event {
            "accepted" => accepted_ids.push(id),
            "token" => {
                let index = v.get("index").and_then(Json::as_usize).expect("index");
                let value = v.get("value").and_then(Json::as_f32s).expect("value");
                tokens.entry(id).or_default().push((index, value));
            }
            "done" => {
                assert!(done.insert(id), "duplicate done for {id}");
            }
            other => panic!("unexpected event {other:?}: {v:?}"),
        }
    }
    assert_eq!(accepted_ids.len(), specs.len());

    for (&(tenant, context_len, gen), &id) in specs.iter().zip(&accepted_ids) {
        let got = tokens.remove(&id).unwrap_or_default();
        assert_eq!(got.len(), gen, "tenant {tenant}: token frame count");
        for (i, (index, _)) in got.iter().enumerate() {
            assert_eq!(*index, i, "tenant {tenant}: frames in decode order");
        }
        let rows: Vec<Vec<f32>> = got.into_iter().map(|(_, v)| v).collect();
        let solo = solo_reference(DecodeRequest::new(tenant, query(tenant), context_len, gen));
        assert_eq!(
            rows, solo,
            "tenant {tenant}: TCP-streamed tokens diverged bitwise from solo session"
        );
    }

    // poll: a finished request reports its state and decoded rows.
    let first = accepted_ids[0];
    writeln!(writer, "{{\"verb\":\"poll\",\"id\":{first}}}").expect("send poll");
    let status = read_frame(&mut reader);
    assert_eq!(status.get("event").and_then(Json::as_str), Some("status"));
    assert_eq!(status.get("state").and_then(Json::as_str), Some("finished"));
    assert_eq!(
        status.get("tokens").and_then(Json::as_usize),
        Some(specs[0].2)
    );
    let steps = status.get("steps").expect("finished poll carries rows");
    match steps {
        Json::Arr(rows) => assert_eq!(rows.len(), specs[0].2),
        other => panic!("steps not an array: {other:?}"),
    }

    // poll of an unknown id is typed, not an error.
    writeln!(writer, "{{\"verb\":\"poll\",\"id\":999}}").expect("send poll");
    let unknown = read_frame(&mut reader);
    assert_eq!(unknown.get("state").and_then(Json::as_str), Some("unknown"));

    // deadline rejection over the wire: typed, with retry_after_ms > 0.
    let line = proto::submit_line(0, 5, &query(5), 10, 64, 0, Some(0), false);
    writeln!(writer, "{line}").expect("send submit");
    let rej = read_frame(&mut reader);
    assert_eq!(rej.get("event").and_then(Json::as_str), Some("rejected"));
    assert_eq!(rej.get("reason").and_then(Json::as_str), Some("deadline"));
    assert!(
        rej.get("retry_after_ms")
            .and_then(Json::as_u64)
            .expect("retry")
            >= 1,
        "{rej:?}"
    );

    // stats: scheduler counters + metrics snapshot, all JSON.
    writeln!(writer, "{{\"verb\":\"stats\"}}").expect("send stats");
    let stats = read_frame(&mut reader);
    assert_eq!(stats.get("event").and_then(Json::as_str), Some("stats"));
    assert_eq!(
        stats.get("proto").and_then(Json::as_u64),
        Some(vq_llm::net::PROTO_VERSION)
    );
    assert!(stats.get("uptime_ms").and_then(Json::as_u64).is_some());
    assert_eq!(stats.get("draining").and_then(Json::as_bool), Some(false));
    let srv = stats.get("server").expect("server object");
    assert_eq!(srv.get("completed").and_then(Json::as_u64), Some(3));
    assert_eq!(srv.get("inflight_tokens").and_then(Json::as_u64), Some(0));
    let metrics = stats.get("metrics").expect("metrics object");
    assert_eq!(
        metrics.get("rejected_deadline").and_then(Json::as_u64),
        Some(1)
    );
    assert!(metrics.get("step_latency_p99_us").is_some());

    // malformed frames get an error event, and the connection survives.
    writeln!(writer, "not json").expect("send garbage");
    let err = read_frame(&mut reader);
    assert_eq!(err.get("event").and_then(Json::as_str), Some("error"));

    server.shutdown();
}

/// Reads frames until one matches `event`, skipping others (pings,
/// stragglers); panics after `max` frames.
fn read_until_event(reader: &mut BufReader<TcpStream>, event: &str, max: usize) -> Json {
    for _ in 0..max {
        let mut line = String::new();
        reader.read_line(&mut line).expect("server frame");
        let v = json::parse(line.trim()).unwrap_or_else(|e| panic!("bad frame {line:?}: {e}"));
        if v.get("event").and_then(Json::as_str) == Some(event) {
            return v;
        }
    }
    panic!("no {event:?} frame within {max} frames");
}

/// Polls the driver until it reports no queued or running work, then
/// returns the final stats (asserting the exact-accounting invariant:
/// an idle driver owes zero inflight tokens).
fn wait_idle(client: &vq_llm::Client) -> vq_llm::net::DriverStats {
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        let stats = client.stats().expect("driver alive");
        if stats.front_queued == 0 && stats.engine_queued == 0 && stats.running == 0 {
            assert_eq!(
                stats.inflight_tokens, 0,
                "idle driver must owe zero inflight tokens"
            );
            return stats;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "driver never went idle: {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// A client that stops reading while the driver streams at full tilt is
/// evicted once its bounded writer queue overflows — without blocking
/// the driver — and its in-flight tickets are cancelled so the engine
/// goes idle with exact (zero) inflight-token accounting.
#[test]
fn slow_reader_is_evicted_and_its_tickets_cancelled() {
    let (engine, h) = engine(2, 64);
    let net = NetConfig {
        writer_queue_cap: 8,
        slow_reader_grace: Duration::from_millis(100),
        ..NetConfig::default()
    };
    let server =
        loopback_with(engine, vec![h], AdmissionConfig::default(), net).expect("bind loopback");
    let client = server.client().clone();

    // Submit enough streamed tokens to overrun both the socket buffers
    // and the 8-frame writer queue, then never read a byte.
    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    let mut writer = stream.try_clone().expect("clone socket");
    for i in 0..24u64 {
        let line = proto::submit_line(0, i, &query(i), 8, 240, 0, None, true);
        writeln!(writer, "{line}").expect("send submit");
    }

    // The connection must be evicted as a slow reader.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        let m = client.metrics();
        let slow = m
            .disconnects
            .iter()
            .find(|(c, _)| *c == "slow_reader")
            .map_or(0, |&(_, n)| n);
        if slow >= 1 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "slow reader never evicted: {m:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // Eviction cancelled the tickets: the driver drains to idle instead
    // of decoding hundreds of tokens for nobody, and the backlog
    // counter lands exactly at zero.
    wait_idle(&client);
    let m = client.metrics();
    assert!(
        m.writer_queue_peak <= 8,
        "writer queue exceeded its bound: {}",
        m.writer_queue_peak
    );
    assert_eq!(m.active_connections, 0);
    drop(stream);
    server.shutdown();
}

/// A request line longer than the configured cap gets a typed error
/// frame and a disconnect — never unbounded buffering.
#[test]
fn oversized_line_gets_typed_error_and_disconnect() {
    let (engine, h) = engine(1, 4);
    let net = NetConfig {
        line_length_cap: 256,
        ..NetConfig::default()
    };
    let server =
        loopback_with(engine, vec![h], AdmissionConfig::default(), net).expect("bind loopback");

    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    let mut writer = stream.try_clone().expect("clone socket");
    let mut reader = BufReader::new(stream);
    let hello = read_until_event(&mut reader, "hello", 4);
    assert_eq!(
        hello.get("line_length_cap").and_then(Json::as_u64),
        Some(256)
    );

    let oversize = "x".repeat(1024);
    writeln!(writer, "{oversize}").expect("send oversize line");
    let err = read_until_event(&mut reader, "error", 4);
    let msg = err.get("message").and_then(Json::as_str).expect("message");
    assert!(msg.contains("cap"), "unexpected error message: {msg}");
    // The server closes the connection after the error frame.
    let mut line = String::new();
    assert_eq!(reader.read_line(&mut line).expect("eof"), 0, "{line:?}");

    // The disconnect metric lands just after the socket closes — poll
    // briefly rather than racing the server's cleanup.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        let m = server.client().metrics();
        let errors = m
            .disconnects
            .iter()
            .find(|(c, _)| *c == "error")
            .map_or(0, |&(_, n)| n);
        if errors == 1 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "error disconnect never counted: {m:?}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    server.shutdown();
}

/// Hanging up mid-stream cancels the connection's in-flight requests,
/// freeing decode slots for other tenants, and the inflight-token
/// counter returns exactly to zero (the underflow-regression pin).
#[test]
fn mid_stream_disconnect_cancels_and_frees_the_slot() {
    let (engine, h) = engine(1, 8);
    let server =
        vq_llm::net::loopback(engine, vec![h], AdmissionConfig::default()).expect("bind loopback");
    let client = server.client().clone();

    {
        let stream = TcpStream::connect(server.local_addr()).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("read timeout");
        let mut writer = stream.try_clone().expect("clone socket");
        let mut reader = BufReader::new(stream);
        read_until_event(&mut reader, "hello", 2);
        // A long request that cannot finish before we hang up.
        let line = proto::submit_line(0, 1, &query(1), 8, 240, 0, None, true);
        writeln!(writer, "{line}").expect("send submit");
        read_until_event(&mut reader, "accepted", 4);
        // Drop both halves: mid-stream disconnect.
    }

    // The reader observes EOF, cancels the ticket, the slot frees, and
    // the exact accounting lands at zero (wait_idle asserts it).
    wait_idle(&client);
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        let m = client.metrics();
        let eof = m
            .disconnects
            .iter()
            .find(|(c, _)| *c == "eof")
            .map_or(0, |&(_, n)| n);
        if eof >= 1 && m.active_connections == 0 {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "EOF never recorded");
        std::thread::sleep(Duration::from_millis(5));
    }

    // The freed slot serves the next tenant immediately.
    let ticket = client.submit(NetRequest::new(h, DecodeRequest::new(2, query(2), 10, 2)));
    assert!(matches!(client.wait(&ticket), Ok(TicketEnd::Finished(_))));
    server.shutdown();
}

/// Graceful drain at the driver level: in-flight work finishes (bitwise
/// identical to solo), new submissions reject typed as `draining` with
/// a computed retry, and the report counts the completions.
#[test]
fn drain_finishes_inflight_rejects_new_typed_and_reports() {
    let (engine, h) = engine(1, 16);
    let (client, driver) = spawn_driver(engine, AdmissionConfig::default());

    // Enough sequential work (4 × 200 steps on one slot) that the drain
    // probe below lands while the engine is still busy.
    let reqs: Vec<DecodeRequest> = (0..4)
        .map(|i| DecodeRequest::new(i, query(i), 8 + i as usize, 200))
        .collect();
    let tickets: Vec<_> = reqs
        .iter()
        .map(|r| client.submit(NetRequest::new(h, r.clone())))
        .collect();

    let drain_client = client.clone();
    let drain = std::thread::spawn(move || driver.drain(Duration::from_secs(120)));
    // Wait until the driver acknowledges it is draining.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        match drain_client.stats() {
            Some(s) if s.draining => break,
            Some(_) => {}
            None => panic!("driver exited before the drain was observed"),
        }
        assert!(std::time::Instant::now() < deadline, "drain never started");
        std::thread::sleep(Duration::from_millis(2));
    }

    // New work is rejected typed, with a positive computed backoff.
    let probe = client.submit(NetRequest::new(h, DecodeRequest::new(9, query(9), 10, 2)));
    match client.wait(&probe).expect("driver alive") {
        TicketEnd::Rejected {
            reason: RejectReason::Draining { retry_after_ms },
            retry_after_ms: retry,
        } => {
            assert!(retry_after_ms >= 1);
            assert_eq!(retry, retry_after_ms);
        }
        other => panic!("expected a typed draining rejection, got {other:?}"),
    }

    // Everything in flight finishes, bitwise identical to solo drains.
    for (req, ticket) in reqs.iter().zip(&tickets) {
        match client.wait(ticket).expect("driver alive") {
            TicketEnd::Finished(out) => {
                assert_eq!(
                    out.steps,
                    solo_reference(req.clone()),
                    "drained decode diverged from solo"
                );
            }
            other => panic!("in-flight request did not survive the drain: {other:?}"),
        }
    }
    let report = drain.join().expect("drain thread");
    assert_eq!(report.completed, 4);
    assert_eq!(report.cancelled, 0);
}

/// Graceful drain through the TCP server: the in-flight stream flushes
/// to the client bitwise-complete, and the drained server refuses new
/// connections with a typed frame.
#[test]
fn server_drain_flushes_streams_and_refuses_new_connections() {
    let (engine, h) = engine(1, 8);
    let server =
        vq_llm::net::loopback(engine, vec![h], AdmissionConfig::default()).expect("bind loopback");
    let addr = server.local_addr();

    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    let mut writer = stream.try_clone().expect("clone socket");
    let mut reader = BufReader::new(stream);
    read_until_event(&mut reader, "hello", 2);

    let req = DecodeRequest::new(3, query(3), 20, 60);
    let line = proto::submit_line(0, 3, &query(3), 20, 60, 0, None, true);
    writeln!(writer, "{line}").expect("send submit");
    read_until_event(&mut reader, "accepted", 2);

    // Drain from another thread while this one consumes the stream.
    let drain = std::thread::spawn(move || server.drain(Duration::from_secs(120)));

    let mut rows: Vec<Vec<f32>> = Vec::new();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("server frame");
        let v = json::parse(line.trim()).unwrap_or_else(|e| panic!("bad frame {line:?}: {e}"));
        match v.get("event").and_then(Json::as_str) {
            Some("token") => rows.push(v.get("value").and_then(Json::as_f32s).expect("value")),
            Some("done") => break,
            Some("rejected") => panic!("in-flight stream rejected during drain: {v:?}"),
            _ => {}
        }
    }
    assert_eq!(
        rows,
        solo_reference(req),
        "drained TCP stream diverged bitwise from solo"
    );
    let report = drain.join().expect("drain thread");
    assert_eq!(report.cancelled, 0, "a clean drain cancels nothing");

    // The drained server is gone: a new dial is either refused outright
    // or answered with a typed frame and closed.
    if let Ok(probe) = TcpStream::connect(addr) {
        probe
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("read timeout");
        let mut r = BufReader::new(probe);
        let mut line = String::new();
        if r.read_line(&mut line).unwrap_or(0) > 0 {
            let v = json::parse(line.trim()).expect("frame");
            assert_eq!(
                v.get("event").and_then(Json::as_str),
                Some("conn_rejected"),
                "{line:?}"
            );
        }
    }
}

/// Per-tenant rate limits over the wire: the budgeted tenant's second
/// request rejects typed `rate_limited` with a positive retry, while an
/// unbudgeted tenant sails through.
#[test]
fn rate_limited_tenant_gets_typed_rejection_over_tcp() {
    let (engine, h) = engine(2, 16);
    let cfg = AdmissionConfig {
        rate_limit: Some(RateLimitConfig {
            window_ms: 60_000,
            default_budget: u64::MAX,
            budgets: vec![(1, 4)],
        }),
        ..AdmissionConfig::default()
    };
    let server = vq_llm::net::loopback(engine, vec![h], cfg).expect("bind loopback");

    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    let mut writer = stream.try_clone().expect("clone socket");
    let mut reader = BufReader::new(stream);
    read_until_event(&mut reader, "hello", 2);

    // Tenant 1 spends its whole 4-token budget...
    let line = proto::submit_line(0, 1, &query(1), 10, 4, 0, None, false);
    writeln!(writer, "{line}").expect("send submit");
    read_until_event(&mut reader, "accepted", 2);
    // ...so its next token rejects typed.
    let line = proto::submit_line(0, 1, &query(1), 10, 1, 0, None, false);
    writeln!(writer, "{line}").expect("send submit");
    let rej = read_until_event(&mut reader, "rejected", 4);
    assert_eq!(
        rej.get("reason").and_then(Json::as_str),
        Some("rate_limited")
    );
    assert!(
        rej.get("retry_after_ms")
            .and_then(Json::as_u64)
            .expect("retry")
            >= 1
    );

    // An unbudgeted tenant is unaffected.
    let line = proto::submit_line(0, 2, &query(2), 10, 4, 0, None, false);
    writeln!(writer, "{line}").expect("send submit");
    read_until_event(&mut reader, "accepted", 4);

    let m = server.client().metrics();
    assert_eq!(
        m.rejected.iter().find(|(c, _)| *c == "rate_limited"),
        Some(&("rate_limited", 1))
    );
    server.shutdown();
}

/// The connection limit: accepts past `max_connections` are answered
/// with a typed `conn_rejected` frame and closed; a freed slot accepts
/// again.
#[test]
fn connection_limit_rejects_typed_then_recovers() {
    let (engine, h) = engine(1, 4);
    let net = NetConfig {
        max_connections: 1,
        ..NetConfig::default()
    };
    let server =
        loopback_with(engine, vec![h], AdmissionConfig::default(), net).expect("bind loopback");
    let addr = server.local_addr();

    let first = TcpStream::connect(addr).expect("connect");
    first
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    let mut first_reader = BufReader::new(first.try_clone().expect("clone"));
    read_until_event(&mut first_reader, "hello", 2);

    let second = TcpStream::connect(addr).expect("connect");
    second
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    let mut second_reader = BufReader::new(second);
    let rej = read_until_event(&mut second_reader, "conn_rejected", 2);
    assert_eq!(
        rej.get("reason").and_then(Json::as_str),
        Some("connection_limit")
    );
    assert!(
        rej.get("retry_after_ms")
            .and_then(Json::as_u64)
            .expect("retry")
            >= 1
    );

    // Hang up the first connection; once the server notices, the slot
    // frees and a new dial gets its hello.
    drop(first);
    drop(first_reader);
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        let probe = TcpStream::connect(addr).expect("connect");
        probe
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("read timeout");
        let mut r = BufReader::new(probe);
        let mut line = String::new();
        if r.read_line(&mut line).unwrap_or(0) > 0 && line.contains("\"event\":\"hello\"") {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "slot never freed: {line:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    server.shutdown();
}

/// Idle connections are reaped after `idle_timeout`, with a farewell
/// error frame, a clean close, and a typed disconnect metric; `ping`
/// resets the idle clock.
#[test]
fn idle_connection_is_reaped_after_timeout() {
    let (engine, h) = engine(1, 4);
    let net = NetConfig {
        idle_timeout: Some(Duration::from_millis(300)),
        ..NetConfig::default()
    };
    let server =
        loopback_with(engine, vec![h], AdmissionConfig::default(), net).expect("bind loopback");

    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    let mut writer = stream.try_clone().expect("clone socket");
    let mut reader = BufReader::new(stream);
    read_until_event(&mut reader, "hello", 2);

    // Pings keep the connection alive well past the idle timeout.
    for _ in 0..3 {
        std::thread::sleep(Duration::from_millis(150));
        writeln!(writer, "{{\"verb\":\"ping\"}}").expect("send ping");
        read_until_event(&mut reader, "pong", 2);
    }

    // Then silence: the reaper sends a farewell error and closes.
    let err = read_until_event(&mut reader, "error", 4);
    let msg = err.get("message").and_then(Json::as_str).expect("message");
    assert!(msg.contains("idle"), "unexpected farewell: {msg}");
    let mut line = String::new();
    assert_eq!(reader.read_line(&mut line).expect("eof"), 0);

    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        let m = server.client().metrics();
        let idle = m
            .disconnects
            .iter()
            .find(|(c, _)| *c == "idle")
            .map_or(0, |&(_, n)| n);
        if idle >= 1 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "idle reap not counted"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    server.shutdown();
}
