//! Integration: generated kernel sources contain exactly the constructs
//! each plan's decisions imply (golden structural checks), with plans and
//! emission flowing through the `Session` facade.

use vq_llm::{ComputeOp, GpuSpec, OptLevel, Session, VqAlgorithm};

fn session() -> Session {
    Session::builder()
        .gpu(GpuSpec::rtx4090())
        .build()
        .expect("valid session")
}

fn emit(s: &Session, algo: VqAlgorithm, op: ComputeOp, level: OptLevel) -> String {
    let plan = s.plan_at(&algo.config(), &op, level).unwrap();
    s.emit(&plan)
}

#[test]
fn ladder_changes_the_generated_code_monotonically() {
    let s = session();
    let op = ComputeOp::attention_decode(32, 128, 1024, 1);
    let gc = emit(&s, VqAlgorithm::Cq2, op, OptLevel::Gc);
    let o1 = emit(&s, VqAlgorithm::Cq2, op, OptLevel::O1);
    let o2 = emit(&s, VqAlgorithm::Cq2, op, OptLevel::O2);
    let o3 = emit(&s, VqAlgorithm::Cq2, op, OptLevel::O3);
    let o4 = emit(&s, VqAlgorithm::Cq2, op, OptLevel::O4);

    assert!(gc.contains("all entries in global") && !gc.contains("smem_entries"));
    assert!(o1.contains("smem_entries") && !o1.contains("reg_entries"));
    assert!(o2.contains("reg_entries") || o2.contains("smem_entries"));
    assert!(o3.contains("Parallel_For") && o3.contains("global_reduce"));
    assert!(
        o4.contains("__shfl_xor_sync"),
        "CQ-2 attention fuses in registers (3 shuffles)"
    );
}

#[test]
fn every_preset_generates_compilable_looking_source() {
    let s = session();
    for algo in VqAlgorithm::ALL {
        let op = if algo.is_weight_algorithm() {
            ComputeOp::Gemm {
                m: 2048,
                n: 11008,
                k: 4096,
            }
        } else {
            ComputeOp::attention_decode(32, 128, 1024, 1)
        };
        let src = emit(&s, algo, op, OptLevel::O4);
        assert!(
            src.contains("__global__ void"),
            "{algo}: missing kernel signature"
        );
        assert!(
            src.contains("#define VECTOR_SIZE"),
            "{algo}: missing config"
        );
        assert_eq!(
            src.matches('{').count(),
            src.matches('}').count(),
            "{algo}: unbalanced braces"
        );
        assert!(
            src.contains(&algo.config().descriptor()),
            "{algo}: missing descriptor"
        );
    }
}

#[test]
fn aqlm_source_documents_unaligned_decode() {
    let s = session();
    let src = emit(
        &s,
        VqAlgorithm::Aqlm3,
        ComputeOp::Gemv {
            n: 11008,
            k: 4096,
            batch: 1,
        },
        OptLevel::O4,
    );
    assert!(src.contains("12-bit"));
    assert!(src.contains("unaligned shift+mask decode"));
    // 7 shuffles ≥ threshold → shared fusion, no shuffles in the source.
    assert!(src.contains("store_smem_tile"));
    assert!(!src.contains("__shfl_xor_sync"));
}

#[test]
fn quip_source_contains_lattice_decode_and_three_shuffles() {
    let s = session();
    let src = emit(
        &s,
        VqAlgorithm::QuipSharp4,
        ComputeOp::Gemm {
            m: 2048,
            n: 11008,
            k: 4096,
        },
        OptLevel::O4,
    );
    assert!(src.contains("apply_signs"));
    assert_eq!(src.matches("__shfl_xor_sync").count(), 3);
    assert!(src.contains("mma_sync_accumulate"));
}

#[test]
fn emission_is_deterministic_across_cache_hits() {
    // The memoized plan must emit byte-identical source on every lookup.
    let s = session();
    let op = ComputeOp::attention_decode(32, 128, 1024, 1);
    let first = emit(&s, VqAlgorithm::Cq2, op, OptLevel::O4);
    let second = emit(&s, VqAlgorithm::Cq2, op, OptLevel::O4);
    assert_eq!(first, second);
    assert!(s.cache_stats().hits >= 1);
}
