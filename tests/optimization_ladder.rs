//! Integration: the optimization ladder reproduces the paper's qualitative
//! breakdown claims (Figs. 13-15) on the performance model, driven through
//! the `Session` facade.

use vq_llm::kernels::fp16;
use vq_llm::{ComputeOp, GpuSpec, OptLevel, Session, VqAlgorithm};

fn session() -> Session {
    Session::builder()
        .gpu(GpuSpec::rtx4090())
        .build()
        .expect("valid session")
}

fn ladder(s: &Session, algo: VqAlgorithm, op: ComputeOp) -> Vec<(OptLevel, f64)> {
    let vq = algo.config();
    OptLevel::ALL
        .iter()
        .map(|&level| {
            let plan = s.plan_at(&vq, &op, level).unwrap();
            (level, s.estimate(&plan).us())
        })
        .collect()
}

fn at(lad: &[(OptLevel, f64)], l: OptLevel) -> f64 {
    lad.iter().find(|(x, _)| *x == l).unwrap().1
}

#[test]
fn best_beats_gc_everywhere() {
    let s = session();
    let cases = [
        (
            VqAlgorithm::QuipSharp4,
            ComputeOp::Gemm {
                m: 2048,
                n: 11008,
                k: 4096,
            },
        ),
        (
            VqAlgorithm::Aqlm3,
            ComputeOp::Gemv {
                n: 11008,
                k: 4096,
                batch: 1,
            },
        ),
        (
            VqAlgorithm::Gptvq2,
            ComputeOp::Gemv {
                n: 11008,
                k: 4096,
                batch: 16,
            },
        ),
        (
            VqAlgorithm::Cq2,
            ComputeOp::attention_decode(32, 128, 1024, 1),
        ),
        (
            VqAlgorithm::Cq4,
            ComputeOp::attention_decode(32, 128, 4096, 8),
        ),
    ];
    for (algo, op) in cases {
        let lad = ladder(&s, algo, op);
        let gc = at(&lad, OptLevel::Gc);
        let (_, best) = s.best_plan(&algo.config(), &op).unwrap();
        let reduction = 1.0 - best.us() / gc;
        assert!(
            reduction > 0.30,
            "{algo} {op}: reduction only {:.1}% (GC {:.1} vs best {:.1})",
            reduction * 100.0,
            gc,
            best.us()
        );
    }
}

#[test]
fn attention_ladder_matches_paper_shape() {
    // Paper Fig. 15: SC < GC, O1 the cache win, O3 the dataflow win, O4 a
    // minor final gain.
    let s = session();
    let lad = ladder(
        &s,
        VqAlgorithm::Cq2,
        ComputeOp::attention_decode(32, 128, 4096, 8),
    );
    assert!(at(&lad, OptLevel::Sc) < at(&lad, OptLevel::Gc), "SC < GC");
    assert!(
        at(&lad, OptLevel::O1) < at(&lad, OptLevel::Sc),
        "O1 < SC at scale"
    );
    assert!(
        at(&lad, OptLevel::O3) < at(&lad, OptLevel::O2) * 0.8,
        "O3 major win"
    );
    assert!(
        at(&lad, OptLevel::O4) <= at(&lad, OptLevel::O3) * 1.02,
        "O4 no regression"
    );
}

#[test]
fn quip_gemm_o3_regression_and_o4_recovery() {
    // Paper §VII-C: for QuiP# GeMM the residual split causes redundant
    // computation (O3 regression); register fusion recovers (O4).
    let s = session();
    let op = ComputeOp::Gemm {
        m: 2048,
        n: 11008,
        k: 4096,
    };
    let lad = ladder(&s, VqAlgorithm::QuipSharp4, op);
    assert!(
        at(&lad, OptLevel::O3) > at(&lad, OptLevel::O2),
        "O3 must regress GeMM"
    );
    // O4's register fusion never hurts; when the redundant mma dominates it
    // may only tie O3 (the savings hide under the compute bound).
    assert!(
        at(&lad, OptLevel::O4) <= at(&lad, OptLevel::O3) * 1.001,
        "O4 must not regress"
    );
    // The adaptive best level avoids the O3 trap entirely.
    let (best, out) = s.best_plan(&VqAlgorithm::QuipSharp4.config(), &op).unwrap();
    assert!(
        best.opt_level < OptLevel::O3,
        "best GeMM plan skips the residual split"
    );
    assert!(out.us() <= at(&lad, OptLevel::O2) * 1.001);
}

#[test]
fn vq_llm_is_competitive_with_element_wise_at_4bit() {
    // Paper Fig. 16: at matched bit-width the VQ kernels land close to
    // AWQ/QoQ.
    let s = session();
    let gemv = ComputeOp::Gemv {
        n: 11008,
        k: 4096,
        batch: 16,
    };
    let (_, vq_out) = s
        .best_plan(&VqAlgorithm::QuipSharp4.config(), &gemv)
        .unwrap();
    let awq = vq_llm::kernels::elementwise::awq_gemv(s.gpu(), 11008, 4096, 16);
    let ratio = vq_out.us() / awq.us();
    assert!((0.6..1.4).contains(&ratio), "VQ/AWQ GeMV ratio {ratio}");

    let attn = ComputeOp::attention_decode(32, 128, 1024, 1);
    let (_, vq_attn) = s.best_plan(&VqAlgorithm::Cq4.config(), &attn).unwrap();
    let qoq = vq_llm::kernels::elementwise::qoq_attention(s.gpu(), 1, 32, 128, 1024);
    let ratio = vq_attn.us() / qoq.us();
    assert!(
        (0.6..1.4).contains(&ratio),
        "VQ/QoQ attention ratio {ratio}"
    );
}

#[test]
fn vq_llm_beats_every_fp16_attention_baseline() {
    // Paper Fig. 18.
    let s = session();
    let cq4 = VqAlgorithm::Cq4.config();
    for seq in [1024usize, 2048, 4096] {
        for batch in [1usize, 8] {
            let op = ComputeOp::attention_decode(32, 128, seq, batch);
            let (_, ours) = s.best_plan(&cq4, &op).unwrap();
            for baseline in fp16::AttnBaseline::ALL {
                let out = fp16::attention(s.gpu(), baseline, batch, 32, 128, seq);
                assert!(
                    ours.us() < out.us(),
                    "CQ-4 ({:.1}us) must beat {} ({:.1}us) at seq {seq} bs{batch}",
                    ours.us(),
                    baseline.name(),
                    out.us()
                );
            }
        }
    }
}

#[test]
fn speedup_grows_with_batch_for_attention_not_gemv() {
    // Paper §VII-B: attention speedups grow with batch (distinct KV per
    // sample); GeMV speedups are batch-insensitive (shared weights).
    let s = session();
    let cq2 = VqAlgorithm::Cq2.config();
    let red = |batch: usize| {
        let op = ComputeOp::attention_decode(32, 128, 1024, batch);
        let gc_plan = s.plan_at(&cq2, &op, OptLevel::Gc).unwrap();
        let gc = s.estimate(&gc_plan).us();
        let (_, best) = s.best_plan(&cq2, &op).unwrap();
        1.0 - best.us() / gc
    };
    assert!(red(8) > red(1), "attention reduction must grow with batch");

    let quip = VqAlgorithm::QuipSharp4.config();
    let gred = |batch: usize| {
        let op = ComputeOp::Gemv {
            n: 11008,
            k: 4096,
            batch,
        };
        let gc_plan = s.plan_at(&quip, &op, OptLevel::Gc).unwrap();
        let gc = s.estimate(&gc_plan).us();
        let (_, best) = s.best_plan(&quip, &op).unwrap();
        1.0 - best.us() / gc
    };
    let (r1, r16) = (gred(1), gred(16));
    assert!(
        (r1 - r16).abs() < 0.1,
        "GeMV reductions batch-insensitive: {r1} vs {r16}"
    );
}
