//! Deterministic scheduler harness for the serving layer.
//!
//! The `Server` is a synchronous state machine — no threads, no clocks —
//! so these tests single-step it and assert exact scheduling behaviour:
//!
//! * continuous batch re-formation (a request finishing mid-decode frees a
//!   slot that a queued request takes on the next step);
//! * explicit admission rejection at the configured limits — nothing is
//!   ever dropped silently;
//! * **bitwise parity**: a request decoded inside a full, ragged batch
//!   produces exactly the bytes it produces running alone through
//!   `Session::run_attention_ragged` / `Session::run_attention_batch`
//!   with batch = 1 and the server's own canonical plans;
//! * a property: random arrival/length schedules (seeded, no wall-clock)
//!   always terminate, never exceed `max_batch`, and account for every
//!   submission as completed or rejected.

use proptest::prelude::*;
use std::sync::OnceLock;
use vq_llm::llm::accuracy::{project_kv_accuracy, FP16_ACCURACY};
use vq_llm::llm::LlmError;
use vq_llm::tensor::{synth, Tensor2D};
use vq_llm::{
    ContextHandle, DecodeRequest, Engine, KvQuantMode, ProfileConfig, RejectReason, RequestStatus,
    ServeConfig, Server, Session, SharedContext, VqAlgorithm,
};

const SEQ: usize = 320;
const HEAD_DIM: usize = 32;
/// The second context's geometry (deliberately different from the first,
/// so grouping bugs that mix contexts crash on shape instead of passing
/// silently).
const SEQ_B: usize = 288;
const HEAD_DIM_B: usize = 64;

/// One shared (session, context A, context B) triple for the whole file:
/// quantizing the contexts is the expensive part, and sharing them also
/// exercises the plan-cache reuse the serving layer is designed around.
fn harness() -> &'static (Session, SharedContext, SharedContext) {
    static HARNESS: OnceLock<(Session, SharedContext, SharedContext)> = OnceLock::new();
    HARNESS.get_or_init(|| {
        let session = Session::builder()
            .cpu_threads(2)
            .weight_algo(VqAlgorithm::Gptvq2)
            .kv_algo(VqAlgorithm::Cq4)
            .build()
            .expect("valid session");
        let ctx_a = {
            let k = synth::kv_stream(SEQ, HEAD_DIM, 0.85, 11);
            let v = synth::kv_stream(SEQ, HEAD_DIM, 0.85, 12);
            let w = synth::correlated_channels(HEAD_DIM, HEAD_DIM, 4, 0.9, 13);
            SharedContext::new(
                session.quantize_kv(&k, 1).expect("quantize K"),
                session.quantize_kv(&v, 2).expect("quantize V"),
                session.quantize_weights(&w, 3).expect("quantize W"),
            )
            .expect("valid context")
        };
        let ctx_b = {
            let k = synth::kv_stream(SEQ_B, HEAD_DIM_B, 0.8, 21);
            let v = synth::kv_stream(SEQ_B, HEAD_DIM_B, 0.8, 22);
            let w = synth::correlated_channels(HEAD_DIM_B, HEAD_DIM_B, 4, 0.9, 23);
            SharedContext::new(
                session.quantize_kv(&k, 4).expect("quantize K"),
                session.quantize_kv(&v, 5).expect("quantize V"),
                session.quantize_weights(&w, 6).expect("quantize W"),
            )
            .expect("valid context")
        };
        (session, ctx_a, ctx_b)
    })
}

fn server(max_batch: usize, max_queue: usize) -> Server {
    let (session, ctx, _) = harness();
    session
        .serve(ctx.clone(), ServeConfig::new(max_batch, max_queue))
        .expect("valid server")
}

/// An engine over both harness contexts (fresh plan cache per call so
/// stats assertions don't race other tests), sharing the harness
/// session's backend.
fn two_ctx_engine(
    max_batch: usize,
    max_queue: usize,
    profile: ProfileConfig,
) -> (Engine, ContextHandle, ContextHandle) {
    let (session, ctx_a, ctx_b) = harness();
    let mut engine = Engine::builder()
        .backend(std::sync::Arc::clone(session.backend()))
        .weight_algo(VqAlgorithm::Gptvq2)
        .kv_algo(VqAlgorithm::Cq4)
        .serve_config(ServeConfig::new(max_batch, max_queue))
        .profile_config(profile)
        .build()
        .expect("valid engine");
    let ha = engine.register_context(ctx_a.clone()).expect("register A");
    let hb = engine.register_context(ctx_b.clone()).expect("register B");
    (engine, ha, hb)
}

fn query(tenant: u64) -> Vec<f32> {
    (0..HEAD_DIM)
        .map(|d| ((tenant as usize * 17 + d) as f32 * 0.23).sin())
        .collect()
}

fn query_b(tenant: u64) -> Vec<f32> {
    (0..HEAD_DIM_B)
        .map(|d| ((tenant as usize * 29 + d) as f32 * 0.19).cos())
        .collect()
}

/// Drains one request alone through the single-context `Session::serve`
/// facade (its own canonical plans, batch of one) and returns its decoded
/// steps — the solo reference the engine's mixed-context batches must
/// reproduce bitwise.
fn solo_reference(ctx: &SharedContext, req: DecodeRequest) -> Vec<Vec<f32>> {
    let (session, _, _) = harness();
    let mut srv = session
        .serve(ctx.clone(), ServeConfig::new(1, 1))
        .expect("solo server");
    let handle = srv.submit(req).expect("admitted");
    srv.run_until_drained().expect("drained");
    srv.take_output(&handle).expect("finished").steps
}

#[test]
fn finishing_request_frees_a_slot_a_queued_request_takes() {
    let mut srv = server(2, 8);
    let a = srv.submit(DecodeRequest::new(1, query(1), 40, 2)).unwrap();
    let b = srv.submit(DecodeRequest::new(2, query(2), 60, 5)).unwrap();
    let c = srv.submit(DecodeRequest::new(3, query(3), 25, 3)).unwrap();
    assert_eq!(srv.status(&a), RequestStatus::Queued);

    // Step 0: a and b take the two slots; c waits.
    let r0 = srv.step().unwrap();
    assert_eq!(r0.batch, 2);
    assert_eq!(r0.admitted, vec![a.id(), b.id()]);
    assert_eq!(r0.queued, 1);
    assert_eq!(srv.status(&a), RequestStatus::Running);
    assert_eq!(srv.status(&c), RequestStatus::Queued);

    // Step 1: a decodes its last token and leaves mid-drain.
    let r1 = srv.step().unwrap();
    assert_eq!(r1.batch, 2);
    assert_eq!(r1.finished, vec![a.id()]);
    assert_eq!(srv.status(&a), RequestStatus::Finished { tokens: 2 });

    // Step 2: the freed slot goes to c — the batch is re-formed, not
    // drained to empty first.
    let r2 = srv.step().unwrap();
    assert_eq!(r2.admitted, vec![c.id()]);
    assert_eq!(r2.batch, 2);
    assert_eq!(r2.queued, 0);

    let rest = srv.run_until_drained().unwrap();
    assert!(rest.iter().all(|r| r.batch <= 2));
    assert!(srv.is_idle());
    for (h, gen) in [(a, 2usize), (b, 5), (c, 3)] {
        assert_eq!(srv.status(&h), RequestStatus::Finished { tokens: gen });
        let out = srv.take_output(&h).expect("output ready");
        assert_eq!(out.steps.len(), gen);
        assert!(out.steps.iter().all(|s| s.len() == HEAD_DIM));
        assert_eq!(srv.status(&h), RequestStatus::Unknown, "collected");
    }
    let stats = srv.stats();
    assert_eq!(stats.submitted, 3);
    assert_eq!(stats.completed, 3);
    assert_eq!(stats.rejected, 0);
    assert_eq!(stats.decoded_tokens, 10);
    assert!(stats.mean_batch() > 1.0);
}

#[test]
fn admission_limits_reject_explicitly() {
    let mut srv = server(1, 2);
    srv.submit(DecodeRequest::new(1, query(1), 10, 2)).unwrap();
    srv.submit(DecodeRequest::new(2, query(2), 10, 2)).unwrap();
    // Queue full: the third submission is refused, not silently dropped.
    let err = srv
        .submit(DecodeRequest::new(3, query(3), 10, 2))
        .unwrap_err();
    assert!(matches!(err, LlmError::QueueFull { max_queue: 2 }), "{err}");

    // Malformed / unservable requests are rejected up front with a reason.
    let wrong_width = srv.submit(DecodeRequest::new(4, vec![0.0; 3], 10, 2));
    assert!(matches!(
        wrong_width.unwrap_err(),
        LlmError::InvalidRequest { .. }
    ));
    let zero_tokens = srv.submit(DecodeRequest::new(5, query(5), 10, 0));
    assert!(matches!(
        zero_tokens.unwrap_err(),
        LlmError::InvalidRequest { .. }
    ));
    let past_context = srv.submit(DecodeRequest::new(6, query(6), SEQ, 2));
    assert!(matches!(
        past_context.unwrap_err(),
        LlmError::InvalidRequest { .. }
    ));
    // Regression: an absurd token budget must reject, not wrap the
    // admission arithmetic around usize and sneak in.
    let overflow = srv.submit(DecodeRequest::new(7, query(7), 100, usize::MAX - 49));
    assert!(matches!(
        overflow.unwrap_err(),
        LlmError::InvalidRequest { .. }
    ));

    let stats = srv.stats();
    assert_eq!(stats.submitted, 2);
    assert_eq!(stats.rejected, 5);
    // The accepted work still completes.
    srv.run_until_drained().unwrap();
    assert_eq!(srv.stats().completed, 2);
}

/// The tentpole guarantee: scheduling is numerically invisible. Every
/// request decoded in a co-scheduled ragged batch produces bitwise the
/// same bytes as the same request run alone, one step at a time, through
/// the session's batch-of-one entry points with the server's own plans.
#[test]
fn scheduled_decode_is_bitwise_identical_to_solo_runs() {
    let (session, ctx, _) = harness();
    let mut srv = server(3, 8);
    // Varied context positions and lengths force genuinely ragged batches
    // and mid-decode re-formation. The last request attends the *full*
    // context, so its solo reference can go through the plain (non-ragged)
    // `Session::run_attention_batch` with batch = 1.
    let specs: [(u64, usize, usize); 5] = [
        (1, 30, 4),
        (2, 200, 2),
        (3, 77, 6),
        (4, 150, 3),
        (5, SEQ, 1),
    ];
    let handles: Vec<_> = specs
        .iter()
        .map(|&(t, ctx_len, gen)| {
            srv.submit(DecodeRequest::new(t, query(t), ctx_len, gen))
                .unwrap()
        })
        .collect();
    let reports = srv.run_until_drained().unwrap();
    assert!(reports.iter().any(|r| r.batch == 3), "batching happened");
    assert!(
        reports.iter().any(|r| !r.finished.is_empty() && r.queued > 0
            || !r.admitted.is_empty() && r.step > 0),
        "re-formation happened"
    );

    let attn_plan = srv.attention_plan().clone();
    let linear_plan = srv.linear_plan().clone();
    for (&(t, ctx_len, gen), handle) in specs.iter().zip(&handles) {
        let out = srv.take_output(handle).expect("completed");
        assert_eq!(out.tenant, t);
        assert_eq!(out.steps.len(), gen);
        // Solo re-run: same plans, batch of one.
        let mut h = query(t);
        for (step, scheduled) in out.steps.iter().enumerate() {
            let len = ctx_len + step;
            let qs = Tensor2D::from_vec(1, HEAD_DIM, h.clone()).unwrap();
            let (attn, _) = if len == SEQ {
                // Full-length tenants go through the plain batched entry
                // point — raggedness at len == seq is the same arithmetic.
                session
                    .run_attention_batch(&attn_plan, &qs, ctx.kq(), ctx.vq())
                    .unwrap()
            } else {
                session
                    .run_attention_ragged(&attn_plan, &qs, &[len], ctx.kq(), ctx.vq())
                    .unwrap()
            };
            let (y, _) = session.run_gemm(&linear_plan, &attn, ctx.wq()).unwrap();
            assert_eq!(
                scheduled,
                &y.row(0).to_vec(),
                "tenant {t} step {step}: scheduled batch diverged from solo"
            );
            h.copy_from_slice(y.row(0));
        }
    }
}

// --- the multi-context engine ---

/// The acceptance pin: a two-context `Engine` drain produces, per
/// request, bytes identical to that request run alone on a
/// single-context `Session::serve` facade — even though the engine plans
/// from measured profiles and the solo servers from synthetic defaults
/// (host kernels are bitwise blocking-independent, pinned in
/// `tests/host_backend.rs`).
#[test]
fn two_context_engine_drain_is_bitwise_identical_to_solo_sessions() {
    let (_, ctx_a, ctx_b) = harness();
    let (mut engine, ha, hb) = two_ctx_engine(3, 16, ProfileConfig::default());

    // Interleaved submissions across both contexts, ragged positions and
    // lengths, more requests than slots — the batch re-forms mid-drain
    // and every step may hold a mixed-context batch.
    let reqs: Vec<(ContextHandle, DecodeRequest)> = vec![
        (ha, DecodeRequest::new(1, query(1), 30, 4)),
        (hb, DecodeRequest::new(2, query_b(2), 200, 2)),
        (ha, DecodeRequest::new(3, query(3), 77, 6)),
        (hb, DecodeRequest::new(4, query_b(4), 150, 3)),
        (ha, DecodeRequest::new(5, query(5), SEQ, 1)),
        (hb, DecodeRequest::new(6, query_b(6), 40, 5)),
    ];
    let handles: Vec<_> = reqs
        .iter()
        .map(|(h, r)| engine.submit(*h, r.clone()))
        .collect();
    for handle in &handles {
        assert!(matches!(
            engine.poll(handle),
            RequestStatus::Queued | RequestStatus::Running
        ));
    }
    let reports = engine.run_until_drained().expect("drained");
    assert!(
        reports.iter().any(|r| r.groups == 2),
        "mixed-context batches happened: {reports:?}"
    );
    assert!(reports.iter().all(|r| r.batch <= 3 && r.groups <= 2));

    for ((h, req), handle) in reqs.iter().zip(&handles) {
        let gen = req.gen_tokens;
        assert_eq!(engine.poll(handle), RequestStatus::Finished { tokens: gen });
        let out = engine.take_output(handle).expect("finished");
        assert_eq!(out.tenant, req.tenant);
        let ctx = if *h == ha { ctx_a } else { ctx_b };
        let solo = solo_reference(ctx, req.clone());
        assert_eq!(
            out.steps, solo,
            "tenant {}: engine mixed-context batch diverged from solo session",
            req.tenant
        );
        assert_eq!(engine.poll(handle), RequestStatus::Unknown, "collected");
    }
    let stats = engine.stats();
    assert_eq!(stats.submitted, 6);
    assert_eq!(stats.completed, 6);
    assert_eq!(stats.rejected, 0);
}

/// The typed lifecycle: rejected submissions get handles that poll as
/// `Rejected` with the precise reason; unknown context handles reject
/// instead of panicking; `try_submit` surfaces the same as errors.
#[test]
fn engine_rejections_are_typed_and_polled() {
    let (mut engine, ha, hb) = two_ctx_engine(1, 2, ProfileConfig::default());

    let ok = engine.submit(ha, DecodeRequest::new(1, query(1), 10, 2));
    let ok2 = engine.submit(hb, DecodeRequest::new(2, query_b(2), 10, 2));
    // The queue bound (2) is engine-wide: the third submission is refused
    // no matter which context it targets.
    let full = engine.submit(hb, DecodeRequest::new(3, query_b(3), 10, 2));
    assert_eq!(engine.poll(&ok), RequestStatus::Queued);
    assert_eq!(engine.poll(&ok2), RequestStatus::Queued);
    assert_eq!(
        engine.poll(&full),
        RequestStatus::Rejected {
            reason: RejectReason::QueueFull { max_queue: 2 }
        }
    );

    // Wrong query width against context B (its head_dim differs from A's
    // — handles are not interchangeable).
    let wrong = engine.submit(hb, DecodeRequest::new(4, query(4), 10, 2));
    assert_eq!(
        engine.poll(&wrong),
        RequestStatus::Rejected {
            reason: RejectReason::Invalid {
                what: "query width must equal the context's head_dim"
            }
        }
    );

    // A handle this engine never issued: handles carry the issuing
    // engine's nonce, so even a *different* engine's handle whose
    // registry index (0) is perfectly in range here is rejected instead
    // of silently decoding against this engine's context 0.
    let (other, foreign, _) = two_ctx_engine(2, 4, ProfileConfig::default());
    drop(other);
    assert_eq!(foreign.id(), 0, "in range on this engine, yet foreign");
    let unknown = engine.submit(foreign, DecodeRequest::new(5, query(5), 10, 2));
    assert_eq!(
        engine.poll(&unknown),
        RequestStatus::Rejected {
            reason: RejectReason::UnknownContext { id: 0 }
        }
    );

    // The Result-shaped twin reports the same through LlmError.
    let err = engine
        .try_submit(foreign, DecodeRequest::new(6, query(6), 10, 2))
        .unwrap_err();
    assert!(
        matches!(
            err,
            vq_llm::VqLlmError::Pipeline(LlmError::UnknownContext { id: 0 })
        ),
        "{err}"
    );

    let stats = engine.stats();
    assert_eq!(stats.submitted, 2);
    assert_eq!(stats.rejected, 4);
    engine.run_until_drained().expect("accepted work completes");
    assert_eq!(engine.stats().completed, 2);

    // Rejection tombstones are bounded: flood the engine with refusals
    // and the oldest records age out (poll as Unknown) while the most
    // recent cap's worth stay typed. The cumulative counter keeps them.
    use vq_llm::llm::serve::REJECTED_TOMBSTONE_CAP;
    let first_flood = engine.submit(ha, DecodeRequest::new(7, vec![0.0; 1], 1, 1));
    let floods: Vec<_> = (0..REJECTED_TOMBSTONE_CAP as u64)
        .map(|t| engine.submit(ha, DecodeRequest::new(t, vec![0.0; 1], 1, 1)))
        .collect();
    assert_eq!(
        engine.poll(&first_flood),
        RequestStatus::Unknown,
        "aged out"
    );
    assert!(matches!(
        engine.poll(floods.last().unwrap()),
        RequestStatus::Rejected {
            reason: RejectReason::Invalid { .. }
        }
    ));
    assert_eq!(
        engine.stats().rejected,
        4 + 1 + REJECTED_TOMBSTONE_CAP as u64
    );
}

/// Per-reason rejection counters partition the aggregate, and each
/// context accounts for its own submitted/completed requests.
#[test]
fn per_reason_rejection_counters_and_per_context_accounting() {
    let (mut engine, ha, hb) = two_ctx_engine(1, 2, ProfileConfig::default());
    engine.submit(ha, DecodeRequest::new(1, query(1), 10, 2));
    engine.submit(hb, DecodeRequest::new(2, query_b(2), 10, 2));
    // One rejection of each reachable kind.
    engine.submit(hb, DecodeRequest::new(3, query_b(3), 10, 2)); // queue full
    let (other, foreign, _) = two_ctx_engine(2, 4, ProfileConfig::default());
    drop(other);
    engine.submit(foreign, DecodeRequest::new(4, query(4), 10, 2)); // unknown ctx

    let mid = engine.stats();
    assert_eq!(mid.rejected_queue_full, 1);
    assert_eq!(mid.rejected_unknown_context, 1);
    assert_eq!(mid.rejected_invalid, 0);

    engine.run_until_drained().expect("drained");
    // Queue space is free now: invalid requests classify separately.
    engine.submit(hb, DecodeRequest::new(5, query(5), 10, 2)); // wrong width

    let stats = engine.stats();
    assert_eq!(stats.rejected_queue_full, 1);
    assert_eq!(stats.rejected_invalid, 1);
    assert_eq!(stats.rejected_unknown_context, 1);
    assert_eq!(stats.rejected_kv_capacity, 0);
    assert_eq!(
        stats.rejected,
        stats.rejected_queue_full
            + stats.rejected_invalid
            + stats.rejected_kv_capacity
            + stats.rejected_unknown_context,
        "per-reason counters partition the aggregate"
    );
    assert_eq!(stats.cancelled, 0);

    let ca = engine.context_stats(ha).expect("context A");
    assert_eq!((ca.submitted, ca.completed, ca.cancelled), (1, 1, 0));
    let cb = engine.context_stats(hb).expect("context B");
    assert_eq!((cb.submitted, cb.completed, cb.cancelled), (1, 1, 0));
}

/// `Engine::cancel`: a queued request leaves the queue, a running request
/// frees its slot for the next queued one, the handle resolves to a typed
/// `Cancelled` tombstone, and finished/collected requests are unaffected.
#[test]
fn cancel_frees_slots_and_queue_entries_with_typed_tombstones() {
    let (mut engine, ha, _) = two_ctx_engine(1, 8, ProfileConfig::default());
    let a = engine.submit(ha, DecodeRequest::new(1, query(1), 30, 4));
    let b = engine.submit(ha, DecodeRequest::new(2, query(2), 40, 6));
    engine.step().expect("step");
    assert_eq!(engine.poll(&a), RequestStatus::Running);
    assert_eq!(engine.poll(&b), RequestStatus::Queued);
    assert_eq!(
        engine.partial_output(&a).map(<[Vec<f32>]>::len),
        Some(1),
        "one row decoded so far"
    );
    assert_eq!(
        engine.partial_output(&b).map(<[Vec<f32>]>::len),
        Some(0),
        "queued requests expose an empty partial output"
    );

    // Cancelling the running request frees the slot mid-decode…
    assert!(engine.cancel(&a));
    assert_eq!(engine.running(), 0);
    assert_eq!(
        engine.poll(&a),
        RequestStatus::Rejected {
            reason: RejectReason::Cancelled
        }
    );
    assert_eq!(engine.partial_output(&a), None, "cancelled = not live");

    // …and the queued request takes it on the next step.
    let r = engine.step().expect("step");
    assert_eq!(r.admitted, vec![b.id()]);
    assert_eq!(engine.poll(&b), RequestStatus::Running);

    // Cancelling the (now running) b empties the engine.
    assert!(engine.cancel(&b));
    assert!(engine.is_idle());

    // Cancel is not retroactive: finished requests keep their output, and
    // double-cancel / unknown handles return false.
    let c = engine.submit(ha, DecodeRequest::new(3, query(3), 50, 2));
    engine.run_until_drained().expect("drained");
    assert_eq!(engine.poll(&c), RequestStatus::Finished { tokens: 2 });
    assert!(!engine.cancel(&c), "finished requests cannot be cancelled");
    assert_eq!(engine.poll(&c), RequestStatus::Finished { tokens: 2 });
    assert!(!engine.cancel(&a), "already-cancelled handle is a no-op");

    let stats = engine.stats();
    assert_eq!(stats.cancelled, 2);
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.rejected, 0, "cancellations are not admission rejects");
    let cs = engine.context_stats(ha).expect("context A");
    assert_eq!((cs.submitted, cs.completed, cs.cancelled), (3, 1, 2));
}

/// Splitmix-style hash for deriving deterministic schedules from a seed.
fn mix(seed: u64, i: u64) -> u64 {
    let mut z = seed.wrapping_add(i.wrapping_mul(0x9e3779b97f4a7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

proptest! {
    /// Random arrival/length schedules: the scheduler always terminates,
    /// never exceeds `max_batch`, and every submission is either completed
    /// or explicitly rejected — no silent drops.
    #[test]
    fn random_schedules_terminate_and_account_for_everything(
        seed in 0u64..10_000,
        max_batch in 1usize..5,
        max_queue in 0usize..5,
        n_requests in 1usize..11,
    ) {
        let mut srv = server(max_batch, max_queue);
        // Arrival step, context position, and length all derived from the
        // seed — no wall-clock anywhere.
        let mut arrivals: Vec<(u64, DecodeRequest)> = (0..n_requests)
            .map(|i| {
                let r = mix(seed, i as u64);
                let arrive = r % 6;
                let context_len = 1 + (r >> 8) as usize % (SEQ - 4);
                let gen = 1 + (r >> 32) as usize % 4;
                (arrive, DecodeRequest::new(i as u64, query(i as u64), context_len, gen))
            })
            .collect();
        arrivals.sort_by_key(|(t, _)| *t);

        let mut accepted = Vec::new();
        let mut rejected = 0u64;
        let mut expected_tokens = 0usize;
        let mut next = 0;
        let mut ticks = 0u64;
        // Hard bound: every submitted token is decoded once, plus one
        // idle poll per arrival gap. Anything past this is a livelock.
        let bound = 64 + 6 * n_requests as u64;
        while next < arrivals.len() || !srv.is_idle() {
            prop_assert!(ticks < bound, "scheduler did not terminate");
            while next < arrivals.len() && arrivals[next].0 <= ticks {
                let req = arrivals[next].1.clone();
                let gen = req.gen_tokens;
                match srv.submit(req) {
                    Ok(h) => {
                        accepted.push((h, gen));
                        expected_tokens += gen;
                    }
                    Err(LlmError::QueueFull { .. }) => rejected += 1,
                    Err(e) => prop_assert!(false, "unexpected rejection: {e}"),
                }
                next += 1;
            }
            let report = srv.step().unwrap();
            prop_assert!(report.batch <= max_batch, "batch over limit");
            ticks += 1;
        }

        let stats = srv.stats();
        prop_assert_eq!(stats.submitted + stats.rejected, n_requests as u64);
        prop_assert_eq!(stats.rejected, rejected);
        prop_assert_eq!(stats.completed, accepted.len() as u64);
        prop_assert_eq!(stats.decoded_tokens as usize, expected_tokens);
        for (h, gen) in accepted {
            prop_assert_eq!(srv.status(&h), RequestStatus::Finished { tokens: gen });
            let out = srv.take_output(&h).expect("completed output");
            prop_assert_eq!(out.steps.len(), gen);
        }
    }

    /// Random multi-context arrival schedules on the engine: termination,
    /// engine-wide slots never exceed `max_batch`, at most one kernel
    /// group per registered context per step, every request finishes or
    /// is explicitly rejected, and every finished request is **bitwise**
    /// identical to the same request drained alone on a single-context
    /// `Session::serve` facade.
    #[test]
    fn random_multi_context_schedules_are_sound_and_solo_exact(
        seed in 0u64..10_000,
        max_batch in 1usize..5,
        max_queue in 1usize..5,
        n_requests in 1usize..8,
    ) {
        let (_, ctx_a, ctx_b) = harness();
        let (mut engine, ha, hb) = two_ctx_engine(max_batch, max_queue, ProfileConfig::default());
        let mut arrivals: Vec<(u64, ContextHandle, DecodeRequest)> = (0..n_requests)
            .map(|i| {
                let r = mix(seed ^ 0xabcd, i as u64);
                let arrive = r % 6;
                let to_b = r & (1 << 7) != 0;
                let (h, seq, q) = if to_b {
                    (hb, SEQ_B, query_b(i as u64))
                } else {
                    (ha, SEQ, query(i as u64))
                };
                let context_len = 1 + (r >> 8) as usize % (seq - 4);
                let gen = 1 + (r >> 32) as usize % 4;
                (arrive, h, DecodeRequest::new(i as u64, q, context_len, gen))
            })
            .collect();
        arrivals.sort_by_key(|(t, _, _)| *t);

        let mut handles = Vec::new();
        let mut next = 0;
        let mut ticks = 0u64;
        let bound = 64 + 6 * n_requests as u64;
        while next < arrivals.len() || !engine.is_idle() {
            prop_assert!(ticks < bound, "engine did not terminate");
            while next < arrivals.len() && arrivals[next].0 <= ticks {
                let (_, h, req) = arrivals[next].clone();
                handles.push((h, req.clone(), engine.submit(h, req)));
                next += 1;
            }
            let report = engine.step().unwrap();
            prop_assert!(report.batch <= max_batch, "engine-wide slots over limit");
            prop_assert!(report.groups <= 2, "more groups than contexts");
            prop_assert!((report.batch == 0) == (report.groups == 0));
            ticks += 1;
        }

        let stats = engine.stats();
        prop_assert_eq!(stats.submitted + stats.rejected, n_requests as u64);
        let mut finished = 0u64;
        for (h, req, ticket) in handles {
            match engine.poll(&ticket) {
                RequestStatus::Finished { tokens } => {
                    prop_assert_eq!(tokens, req.gen_tokens);
                    finished += 1;
                    let out = engine.take_output(&ticket).expect("finished output");
                    // Per-context bitwise parity vs a solo drain.
                    let ctx = if h == ha { ctx_a } else { ctx_b };
                    prop_assert_eq!(
                        &out.steps,
                        &solo_reference(ctx, req),
                        "mixed-context batch diverged from solo"
                    );
                }
                RequestStatus::Rejected { reason } => {
                    // The only data-independent rejection in this schedule
                    // space is queue pressure.
                    prop_assert_eq!(
                        reason,
                        RejectReason::QueueFull { max_queue },
                        "unexpected rejection"
                    );
                }
                other => prop_assert!(false, "request neither finished nor rejected: {other:?}"),
            }
        }
        prop_assert_eq!(finished, stats.completed);
    }
}

// --- online KV-cache vector quantization ---

/// An engine over harness context A with live-KV mode `mode` and an
/// optional compressed-byte budget (fresh plan cache per call, shared
/// backend — same pattern as [`two_ctx_engine`]).
fn live_engine(mode: KvQuantMode, budget: Option<usize>) -> (Engine, ContextHandle) {
    let (session, ctx_a, _) = harness();
    let mut cfg = ServeConfig::new(4, 16).with_kv_quant(mode);
    if let Some(b) = budget {
        cfg = cfg.with_kv_budget(b);
    }
    let mut engine = Engine::builder()
        .backend(std::sync::Arc::clone(session.backend()))
        .weight_algo(VqAlgorithm::Gptvq2)
        .kv_algo(VqAlgorithm::Cq4)
        .serve_config(cfg)
        .profile_config(ProfileConfig::disabled())
        .build()
        .expect("valid engine");
    let h = engine.register_context(ctx_a.clone()).expect("register");
    (engine, h)
}

/// Drains one request through a live-KV engine and returns its output.
fn live_drain(mode: KvQuantMode, req: &DecodeRequest) -> vq_llm::RequestOutput {
    let (mut engine, h) = live_engine(mode, None);
    let t = engine.submit(h, req.clone());
    engine.run_until_drained().expect("drained");
    engine.take_output(&t).expect("finished")
}

proptest! {
    /// The online-quantization accuracy pin. For random requests:
    ///
    /// * a `Quantized` cache whose tail window covers the whole
    ///   generation never folds, so it is **bitwise** identical to the
    ///   `F32Tail` baseline (the fold path is the only divergence);
    /// * a small tail window folds appended rows into packed codes, and
    ///   the decode stays within a bounded relative error of the f32
    ///   baseline, with the fold-time nMSE threading through
    ///   `accuracy::project_kv_accuracy` onto the offline proxy's scale;
    /// * exact outliers (`outlier_keep_milli = 0`) leave zero fold error.
    #[test]
    fn quantized_live_kv_tracks_the_f32_tail_baseline(
        seed in 0u64..1_000,
        context_len in 16usize..SEQ,
        gen in 2usize..8,
        tail_window in 0usize..3,
        keep_milli in prop::sample::select(vec![0u32, 250]),
    ) {
        let req = DecodeRequest::new(seed, query(seed), context_len, gen);
        let base = live_drain(KvQuantMode::F32Tail, &req);
        prop_assert_eq!(base.steps.len(), gen);
        prop_assert_eq!(base.kv_nmse, 0.0, "f32 tail never folds");

        // Covering tail: nothing folds, bitwise parity with the baseline.
        let covered = live_drain(
            KvQuantMode::Quantized { tail_window: gen, outlier_keep_milli: keep_milli },
            &req,
        );
        prop_assert_eq!(&covered.steps, &base.steps, "covering tail must be bitwise");
        prop_assert_eq!(covered.kv_nmse, 0.0);

        // Folding tail: bounded divergence, accuracy threading.
        let folded = live_drain(
            KvQuantMode::Quantized { tail_window, outlier_keep_milli: keep_milli },
            &req,
        );
        prop_assert_eq!(folded.steps.len(), gen);
        for (step, (sq, sf)) in folded.steps.iter().zip(&base.steps).enumerate() {
            let err = sq.iter().zip(sf).map(|(a, b)| (a - b).powi(2)).sum::<f32>().sqrt();
            let norm = sf.iter().map(|x| x * x).sum::<f32>().sqrt();
            prop_assert!(
                err <= 0.5 * norm + 1e-3,
                "step {step}: quantized decode drifted {err} vs norm {norm}"
            );
        }
        prop_assert!(folded.kv_nmse >= 0.0 && folded.kv_nmse < 2.0);
        let acc = project_kv_accuracy(folded.kv_nmse);
        prop_assert!((0.5 * FP16_ACCURACY..=FP16_ACCURACY + 1e-12).contains(&acc));
        if keep_milli == 0 {
            // Every imperfect group keeps its exact residual.
            prop_assert_eq!(folded.kv_nmse, 0.0, "exact outliers must leave zero error");
        }
        if gen - 1 > tail_window {
            prop_assert!(folded.kv_bytes > 0, "folded requests report compressed bytes");
        }
    }
}

/// The compressed-byte KV budget: admission prices the request's
/// projected footprint (typed `KvCapacity`, wire-retriable), and a cache
/// whose *measured* bytes outgrow the budget mid-decode — here because
/// exact outliers blow past the no-outlier projection — is quarantined
/// with the same typed reason, one token early, before a partial write.
#[test]
fn kv_byte_budget_rejects_at_admission_and_quarantines_midflight() {
    let (_, ctx_a, _) = harness();
    let mode = KvQuantMode::Quantized {
        tail_window: 2,
        outlier_keep_milli: 0,
    };
    let gen = 8usize;
    let projected = vq_llm::TenantKv::new(ctx_a, mode)
        .expect("live cache")
        .projected_bytes(gen - 1);
    assert!(projected > 0);

    // Budget below the projection: refused at admission, typed, with a
    // non-zero wire retry hint.
    let (mut tight, ht) = live_engine(mode, Some(projected - 1));
    let err = tight
        .try_submit(ht, DecodeRequest::new(1, query(1), 50, gen))
        .unwrap_err();
    assert!(
        matches!(
            err,
            vq_llm::VqLlmError::Pipeline(LlmError::KvCapacity { limit, .. })
                if limit == projected - 1
        ),
        "{err}"
    );
    assert_eq!(tight.stats().rejected_kv_capacity, 1);
    let polled = tight.submit(ht, DecodeRequest::new(1, query(1), 50, gen));
    match tight.poll(&polled) {
        RequestStatus::Rejected { reason } => {
            assert!(matches!(reason, RejectReason::KvCapacity { .. }));
            assert_eq!(reason.retry_hint_ms(), Some(1), "retriable, never 0");
        }
        other => panic!("expected typed rejection, got {other:?}"),
    }

    // Budget above the projection but below the outlier-laden measured
    // footprint: admitted, then quarantined mid-decode.
    let (mut engine, h) = live_engine(mode, Some(projected + 64));
    let t = engine.submit(h, DecodeRequest::new(2, query(2), 50, gen));
    engine
        .run_until_drained()
        .expect("drain survives quarantine");
    match engine.poll(&t) {
        RequestStatus::Rejected { reason } => {
            assert!(
                matches!(reason, RejectReason::KvCapacity { .. }),
                "mid-flight budget overrun must be typed kv_capacity: {reason:?}"
            );
        }
        other => panic!("expected mid-flight quarantine, got {other:?}"),
    }
    let stats = engine.stats();
    assert_eq!(stats.quarantined, 1);
    assert!(
        stats.kv_outlier_groups > 0,
        "the quarantined cache's accounting was absorbed"
    );
    assert_eq!(stats.kv_nmse(), 0.0, "exact outliers leave zero fold error");
}

/// Folding without an outlier channel accumulates measurable — but
/// bounded — fold error, and the engine aggregates it across retired
/// requests exactly as the per-request outputs report it.
#[test]
fn fold_error_aggregates_into_engine_stats() {
    let mode = KvQuantMode::Quantized {
        tail_window: 1,
        outlier_keep_milli: 1_000_000,
    };
    let (mut engine, h) = live_engine(mode, None);
    let t = engine.submit(h, DecodeRequest::new(1, query(1), 40, 6));
    engine.run_until_drained().expect("drained");
    let out = engine.take_output(&t).expect("finished");
    assert!(out.kv_nmse > 0.0, "folding without outliers leaves error");
    assert!(out.kv_bytes > 0);
    let stats = engine.stats();
    assert_eq!(stats.kv_folded_tokens, 4, "gen-1 appends minus the tail");
    assert_eq!(stats.kv_outlier_groups, 0);
    assert!(
        (stats.kv_nmse() - out.kv_nmse).abs() < 1e-12,
        "single request: engine aggregate equals the request's own nMSE"
    );
    let acc = project_kv_accuracy(stats.kv_nmse());
    assert!(acc < FP16_ACCURACY && acc > 0.0);
}

/// A profile-shift replan changes which plan is cached — never the bytes
/// a request decodes. Engine A runs aggressive feedback (check every
/// step, zero divergence tolerance, so the first check replans); engine B
/// runs with feedback disabled. Identical schedules must produce
/// identical bytes, and A must have actually replanned.
#[test]
fn profile_shift_replan_does_not_change_emitted_bytes() {
    let aggressive = ProfileConfig {
        check_every: 1,
        replan_divergence: 0.0,
    };
    let (mut a, a_ha, a_hb) = two_ctx_engine(3, 16, aggressive);
    let (mut b, b_ha, b_hb) = two_ctx_engine(3, 16, ProfileConfig::disabled());

    let reqs: Vec<(bool, DecodeRequest)> = vec![
        // Short attended prefixes: the observed histogram covers a sliver
        // of the registration profile, so the distributions diverge and
        // the aggressive config replans immediately.
        (false, DecodeRequest::new(1, query(1), 25, 5)),
        (true, DecodeRequest::new(2, query_b(2), 40, 4)),
        (false, DecodeRequest::new(3, query(3), 60, 6)),
        (true, DecodeRequest::new(4, query_b(4), 30, 3)),
    ];
    let submit_all = |engine: &mut Engine, ha: ContextHandle, hb: ContextHandle| -> Vec<_> {
        reqs.iter()
            .map(|(to_b, r)| engine.submit(if *to_b { hb } else { ha }, r.clone()))
            .collect()
    };
    let tickets_a = submit_all(&mut a, a_ha, a_hb);
    let tickets_b = submit_all(&mut b, b_ha, b_hb);
    a.run_until_drained().expect("drained");
    b.run_until_drained().expect("drained");

    let replans_a = a.context_stats(a_ha).unwrap().replans + a.context_stats(a_hb).unwrap().replans;
    assert!(replans_a >= 1, "aggressive feedback never replanned");
    assert_eq!(b.context_stats(b_ha).unwrap().replans, 0);
    // The replan swapped the cached canonical plan under a measured key…
    assert!(a.context_stats(a_ha).unwrap().profiled_tokens > 0);
    // …but the decoded bytes are identical, request for request.
    for (ta, tb) in tickets_a.iter().zip(&tickets_b) {
        let oa = a.take_output(ta).expect("finished");
        let ob = b.take_output(tb).expect("finished");
        assert_eq!(
            oa.steps, ob.steps,
            "replanning changed decoded bytes (tenant {})",
            oa.tenant
        );
    }
}

/// The warm-up dedupe satellite: sibling servers over one shared plan
/// cache plan nothing new — the second construction is pure cache hits,
/// and the canonical plans are pointer-equal across siblings.
#[test]
fn sibling_servers_warm_from_the_shared_cache() {
    let (_, ctx, _) = harness();
    let cache = std::sync::Arc::new(vq_llm::PlanCache::new());
    let session = Session::builder()
        .weight_algo(VqAlgorithm::Gptvq2)
        .kv_algo(VqAlgorithm::Cq4)
        .plan_cache(std::sync::Arc::clone(&cache))
        .build()
        .expect("valid session");
    let srv1 = session
        .serve(ctx.clone(), ServeConfig::new(2, 2))
        .expect("server");
    let after_first = cache.stats();
    assert_eq!(after_first.misses, 2, "one miss per canonical shape");

    let srv2 = session
        .serve(ctx.clone(), ServeConfig::new(4, 8))
        .expect("server");
    let after_second = cache.stats();
    assert_eq!(
        after_second.misses, after_first.misses,
        "sibling construction re-planned a canonical shape"
    );
    assert_eq!(after_second.hits, after_first.hits + 2);
    assert!(std::sync::Arc::ptr_eq(
        srv1.attention_plan(),
        srv2.attention_plan()
    ));
    assert!(std::sync::Arc::ptr_eq(
        srv1.linear_plan(),
        srv2.linear_plan()
    ));

    // The engine warms through the same helper and the same cache — but
    // under *measured* keys, so it adds exactly its own two entries and
    // afterwards an identical registration is also a pure hit.
    let mut engine = Engine::builder()
        .weight_algo(VqAlgorithm::Gptvq2)
        .kv_algo(VqAlgorithm::Cq4)
        .plan_cache(std::sync::Arc::clone(&cache))
        .build()
        .expect("engine");
    engine.register_context(ctx.clone()).expect("register");
    let after_engine = cache.stats();
    assert_eq!(after_engine.misses, after_second.misses + 2);
    engine
        .register_context(ctx.clone())
        .expect("register again");
    assert_eq!(engine.cache_stats().misses, after_engine.misses);
    assert!(engine.cache_stats().hits > after_engine.hits);
}
