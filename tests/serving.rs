//! Deterministic scheduler harness for the serving layer.
//!
//! The `Server` is a synchronous state machine — no threads, no clocks —
//! so these tests single-step it and assert exact scheduling behaviour:
//!
//! * continuous batch re-formation (a request finishing mid-decode frees a
//!   slot that a queued request takes on the next step);
//! * explicit admission rejection at the configured limits — nothing is
//!   ever dropped silently;
//! * **bitwise parity**: a request decoded inside a full, ragged batch
//!   produces exactly the bytes it produces running alone through
//!   `Session::run_attention_ragged` / `Session::run_attention_batch`
//!   with batch = 1 and the server's own canonical plans;
//! * a property: random arrival/length schedules (seeded, no wall-clock)
//!   always terminate, never exceed `max_batch`, and account for every
//!   submission as completed or rejected.

use proptest::prelude::*;
use std::sync::OnceLock;
use vq_llm::llm::LlmError;
use vq_llm::tensor::{synth, Tensor2D};
use vq_llm::{
    DecodeRequest, RequestStatus, ServeConfig, Server, Session, SharedContext, VqAlgorithm,
};

const SEQ: usize = 320;
const HEAD_DIM: usize = 32;

/// One shared (session, context) pair for the whole file: quantizing the
/// context is the expensive part, and sharing it also exercises the
/// plan-cache reuse the serving layer is designed around.
fn harness() -> &'static (Session, SharedContext) {
    static HARNESS: OnceLock<(Session, SharedContext)> = OnceLock::new();
    HARNESS.get_or_init(|| {
        let session = Session::builder()
            .cpu_threads(2)
            .weight_algo(VqAlgorithm::Gptvq2)
            .kv_algo(VqAlgorithm::Cq4)
            .build()
            .expect("valid session");
        let k = synth::kv_stream(SEQ, HEAD_DIM, 0.85, 11);
        let v = synth::kv_stream(SEQ, HEAD_DIM, 0.85, 12);
        let w = synth::correlated_channels(HEAD_DIM, HEAD_DIM, 4, 0.9, 13);
        let kq = session.quantize_kv(&k, 1).expect("quantize K");
        let vq = session.quantize_kv(&v, 2).expect("quantize V");
        let wq = session.quantize_weights(&w, 3).expect("quantize W");
        let ctx = SharedContext::new(kq, vq, wq).expect("valid context");
        (session, ctx)
    })
}

fn server(max_batch: usize, max_queue: usize) -> Server {
    let (session, ctx) = harness();
    session
        .serve(ctx.clone(), ServeConfig::new(max_batch, max_queue))
        .expect("valid server")
}

fn query(tenant: u64) -> Vec<f32> {
    (0..HEAD_DIM)
        .map(|d| ((tenant as usize * 17 + d) as f32 * 0.23).sin())
        .collect()
}

#[test]
fn finishing_request_frees_a_slot_a_queued_request_takes() {
    let mut srv = server(2, 8);
    let a = srv.submit(DecodeRequest::new(1, query(1), 40, 2)).unwrap();
    let b = srv.submit(DecodeRequest::new(2, query(2), 60, 5)).unwrap();
    let c = srv.submit(DecodeRequest::new(3, query(3), 25, 3)).unwrap();
    assert_eq!(srv.status(&a), RequestStatus::Queued);

    // Step 0: a and b take the two slots; c waits.
    let r0 = srv.step().unwrap();
    assert_eq!(r0.batch, 2);
    assert_eq!(r0.admitted, vec![a.id(), b.id()]);
    assert_eq!(r0.queued, 1);
    assert_eq!(srv.status(&a), RequestStatus::Running);
    assert_eq!(srv.status(&c), RequestStatus::Queued);

    // Step 1: a decodes its last token and leaves mid-drain.
    let r1 = srv.step().unwrap();
    assert_eq!(r1.batch, 2);
    assert_eq!(r1.finished, vec![a.id()]);
    assert_eq!(srv.status(&a), RequestStatus::Completed);

    // Step 2: the freed slot goes to c — the batch is re-formed, not
    // drained to empty first.
    let r2 = srv.step().unwrap();
    assert_eq!(r2.admitted, vec![c.id()]);
    assert_eq!(r2.batch, 2);
    assert_eq!(r2.queued, 0);

    let rest = srv.run_until_drained().unwrap();
    assert!(rest.iter().all(|r| r.batch <= 2));
    assert!(srv.is_idle());
    for (h, gen) in [(a, 2usize), (b, 5), (c, 3)] {
        assert_eq!(srv.status(&h), RequestStatus::Completed);
        let out = srv.take_output(&h).expect("output ready");
        assert_eq!(out.steps.len(), gen);
        assert!(out.steps.iter().all(|s| s.len() == HEAD_DIM));
        assert_eq!(srv.status(&h), RequestStatus::Unknown, "collected");
    }
    let stats = srv.stats();
    assert_eq!(stats.submitted, 3);
    assert_eq!(stats.completed, 3);
    assert_eq!(stats.rejected, 0);
    assert_eq!(stats.decoded_tokens, 10);
    assert!(stats.mean_batch() > 1.0);
}

#[test]
fn admission_limits_reject_explicitly() {
    let mut srv = server(1, 2);
    srv.submit(DecodeRequest::new(1, query(1), 10, 2)).unwrap();
    srv.submit(DecodeRequest::new(2, query(2), 10, 2)).unwrap();
    // Queue full: the third submission is refused, not silently dropped.
    let err = srv
        .submit(DecodeRequest::new(3, query(3), 10, 2))
        .unwrap_err();
    assert!(matches!(err, LlmError::QueueFull { max_queue: 2 }), "{err}");

    // Malformed / unservable requests are rejected up front with a reason.
    let wrong_width = srv.submit(DecodeRequest::new(4, vec![0.0; 3], 10, 2));
    assert!(matches!(
        wrong_width.unwrap_err(),
        LlmError::InvalidRequest { .. }
    ));
    let zero_tokens = srv.submit(DecodeRequest::new(5, query(5), 10, 0));
    assert!(matches!(
        zero_tokens.unwrap_err(),
        LlmError::InvalidRequest { .. }
    ));
    let past_context = srv.submit(DecodeRequest::new(6, query(6), SEQ, 2));
    assert!(matches!(
        past_context.unwrap_err(),
        LlmError::InvalidRequest { .. }
    ));
    // Regression: an absurd token budget must reject, not wrap the
    // admission arithmetic around usize and sneak in.
    let overflow = srv.submit(DecodeRequest::new(7, query(7), 100, usize::MAX - 49));
    assert!(matches!(
        overflow.unwrap_err(),
        LlmError::InvalidRequest { .. }
    ));

    let stats = srv.stats();
    assert_eq!(stats.submitted, 2);
    assert_eq!(stats.rejected, 5);
    // The accepted work still completes.
    srv.run_until_drained().unwrap();
    assert_eq!(srv.stats().completed, 2);
}

/// The tentpole guarantee: scheduling is numerically invisible. Every
/// request decoded in a co-scheduled ragged batch produces bitwise the
/// same bytes as the same request run alone, one step at a time, through
/// the session's batch-of-one entry points with the server's own plans.
#[test]
fn scheduled_decode_is_bitwise_identical_to_solo_runs() {
    let (session, ctx) = harness();
    let mut srv = server(3, 8);
    // Varied context positions and lengths force genuinely ragged batches
    // and mid-decode re-formation. The last request attends the *full*
    // context, so its solo reference can go through the plain (non-ragged)
    // `Session::run_attention_batch` with batch = 1.
    let specs: [(u64, usize, usize); 5] = [
        (1, 30, 4),
        (2, 200, 2),
        (3, 77, 6),
        (4, 150, 3),
        (5, SEQ, 1),
    ];
    let handles: Vec<_> = specs
        .iter()
        .map(|&(t, ctx_len, gen)| {
            srv.submit(DecodeRequest::new(t, query(t), ctx_len, gen))
                .unwrap()
        })
        .collect();
    let reports = srv.run_until_drained().unwrap();
    assert!(reports.iter().any(|r| r.batch == 3), "batching happened");
    assert!(
        reports.iter().any(|r| !r.finished.is_empty() && r.queued > 0
            || !r.admitted.is_empty() && r.step > 0),
        "re-formation happened"
    );

    let attn_plan = srv.attention_plan().clone();
    let linear_plan = srv.linear_plan().clone();
    for (&(t, ctx_len, gen), handle) in specs.iter().zip(&handles) {
        let out = srv.take_output(handle).expect("completed");
        assert_eq!(out.tenant, t);
        assert_eq!(out.steps.len(), gen);
        // Solo re-run: same plans, batch of one.
        let mut h = query(t);
        for (step, scheduled) in out.steps.iter().enumerate() {
            let len = ctx_len + step;
            let qs = Tensor2D::from_vec(1, HEAD_DIM, h.clone()).unwrap();
            let (attn, _) = if len == SEQ {
                // Full-length tenants go through the plain batched entry
                // point — raggedness at len == seq is the same arithmetic.
                session
                    .run_attention_batch(&attn_plan, &qs, ctx.kq(), ctx.vq())
                    .unwrap()
            } else {
                session
                    .run_attention_ragged(&attn_plan, &qs, &[len], ctx.kq(), ctx.vq())
                    .unwrap()
            };
            let (y, _) = session.run_gemm(&linear_plan, &attn, ctx.wq()).unwrap();
            assert_eq!(
                scheduled,
                &y.row(0).to_vec(),
                "tenant {t} step {step}: scheduled batch diverged from solo"
            );
            h.copy_from_slice(y.row(0));
        }
    }
}

/// Splitmix-style hash for deriving deterministic schedules from a seed.
fn mix(seed: u64, i: u64) -> u64 {
    let mut z = seed.wrapping_add(i.wrapping_mul(0x9e3779b97f4a7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

proptest! {
    /// Random arrival/length schedules: the scheduler always terminates,
    /// never exceeds `max_batch`, and every submission is either completed
    /// or explicitly rejected — no silent drops.
    #[test]
    fn random_schedules_terminate_and_account_for_everything(
        seed in 0u64..10_000,
        max_batch in 1usize..5,
        max_queue in 0usize..5,
        n_requests in 1usize..11,
    ) {
        let mut srv = server(max_batch, max_queue);
        // Arrival step, context position, and length all derived from the
        // seed — no wall-clock anywhere.
        let mut arrivals: Vec<(u64, DecodeRequest)> = (0..n_requests)
            .map(|i| {
                let r = mix(seed, i as u64);
                let arrive = r % 6;
                let context_len = 1 + (r >> 8) as usize % (SEQ - 4);
                let gen = 1 + (r >> 32) as usize % 4;
                (arrive, DecodeRequest::new(i as u64, query(i as u64), context_len, gen))
            })
            .collect();
        arrivals.sort_by_key(|(t, _)| *t);

        let mut accepted = Vec::new();
        let mut rejected = 0u64;
        let mut expected_tokens = 0usize;
        let mut next = 0;
        let mut ticks = 0u64;
        // Hard bound: every submitted token is decoded once, plus one
        // idle poll per arrival gap. Anything past this is a livelock.
        let bound = 64 + 6 * n_requests as u64;
        while next < arrivals.len() || !srv.is_idle() {
            prop_assert!(ticks < bound, "scheduler did not terminate");
            while next < arrivals.len() && arrivals[next].0 <= ticks {
                let req = arrivals[next].1.clone();
                let gen = req.gen_tokens;
                match srv.submit(req) {
                    Ok(h) => {
                        accepted.push((h, gen));
                        expected_tokens += gen;
                    }
                    Err(LlmError::QueueFull { .. }) => rejected += 1,
                    Err(e) => prop_assert!(false, "unexpected rejection: {e}"),
                }
                next += 1;
            }
            let report = srv.step().unwrap();
            prop_assert!(report.batch <= max_batch, "batch over limit");
            ticks += 1;
        }

        let stats = srv.stats();
        prop_assert_eq!(stats.submitted + stats.rejected, n_requests as u64);
        prop_assert_eq!(stats.rejected, rejected);
        prop_assert_eq!(stats.completed, accepted.len() as u64);
        prop_assert_eq!(stats.decoded_tokens as usize, expected_tokens);
        for (h, gen) in accepted {
            prop_assert_eq!(srv.status(&h), RequestStatus::Completed);
            let out = srv.take_output(&h).expect("completed output");
            prop_assert_eq!(out.steps.len(), gen);
        }
    }
}
