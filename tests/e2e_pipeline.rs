//! Integration: end-to-end pipeline sanity across devices and schemes
//! (paper Fig. 17), plus the accuracy-proxy ordering — all through the
//! `Session` facade.

use vq_llm::llm::AccuracyProxy;
use vq_llm::{GpuSpec, QuantScheme, Session};

fn run(gpu: GpuSpec, scheme: QuantScheme) -> vq_llm::E2eReport {
    Session::builder()
        .gpu(gpu)
        .build()
        .expect("valid session")
        .pipeline(scheme)
        .generate(1024, 256, 16)
}

#[test]
fn speedups_reproduce_figure_17() {
    let fp16 = run(GpuSpec::rtx4090(), QuantScheme::Fp16);
    let qserve = run(GpuSpec::rtx4090(), QuantScheme::QServe4);
    let vq4 = run(GpuSpec::rtx4090(), QuantScheme::vq_llm_4bit());
    let vq2 = run(GpuSpec::rtx4090(), QuantScheme::vq_llm_2bit());

    let s_qserve = fp16.total_ms() / qserve.total_ms();
    let s_vq4 = fp16.total_ms() / vq4.total_ms();
    let s_vq2 = fp16.total_ms() / vq2.total_ms();

    // Paper: both 4-bit schemes ≈ 2.2×; 2-bit higher.
    assert!((1.7..3.2).contains(&s_qserve), "qServe speedup {s_qserve}");
    assert!((1.7..3.2).contains(&s_vq4), "VQ-LLM-4 speedup {s_vq4}");
    assert!(s_vq2 > s_vq4, "2-bit ({s_vq2}) must beat 4-bit ({s_vq4})");
    assert!(
        (s_vq4 / s_qserve - 1.0).abs() < 0.25,
        "VQ-LLM-4 within 25% of qServe: {s_vq4} vs {s_qserve}"
    );
}

#[test]
fn memory_footprints_reproduce_section_vii_e() {
    let fp16 = run(GpuSpec::rtx4090(), QuantScheme::Fp16);
    let vq4 = run(GpuSpec::rtx4090(), QuantScheme::vq_llm_4bit());
    assert!(fp16.memory_gb > 20.0, "FP16 footprint {}", fp16.memory_gb);
    assert!(vq4.memory_gb < 6.5, "VQ-LLM-4 footprint {}", vq4.memory_gb);
}

#[test]
fn decode_dominates_generation() {
    // Paper §VII-D: the decoding stage dominates LLM inference time.
    let fp16 = run(GpuSpec::rtx4090(), QuantScheme::Fp16);
    assert!(fp16.decode_ms > 3.0 * fp16.prefill_ms);
}

#[test]
fn accuracy_proxy_reproduces_figure_17_right() {
    let proxy = AccuracyProxy::default();
    let fp16 = proxy.evaluate(&QuantScheme::Fp16).accuracy;
    let vq4 = proxy.evaluate(&QuantScheme::vq_llm_4bit()).accuracy;
    let qserve = proxy.evaluate(&QuantScheme::QServe4).accuracy;

    assert!(
        vq4 > qserve,
        "VQ-LLM-4 ({vq4}) must beat qServe-4 ({qserve})"
    );
    assert!(fp16 >= vq4, "FP16 is the ceiling");
    // The paper's gap is ~2.5% relative; ours must be positive and small.
    let rel_gap = (vq4 - qserve) / qserve;
    assert!((0.0..0.15).contains(&rel_gap), "relative gap {rel_gap}");
}

#[test]
fn both_devices_give_substantial_speedup() {
    for gpu in [GpuSpec::rtx4090(), GpuSpec::a40()] {
        let fp16 = run(gpu.clone(), QuantScheme::Fp16);
        let vq4 = run(gpu, QuantScheme::vq_llm_4bit());
        let s = fp16.total_ms() / vq4.total_ms();
        assert!(s > 1.7, "speedup {s}");
    }
}

#[test]
fn one_session_serves_all_schemes_with_one_cache() {
    // The facade's promise for serving: planning happens once per unique
    // (vq, op) key, no matter how many schemes/pipelines run.
    let session = Session::builder().build().unwrap();
    for scheme in [
        QuantScheme::Fp16,
        QuantScheme::QServe4,
        QuantScheme::vq_llm_4bit(),
        QuantScheme::vq_llm_2bit(),
    ] {
        session.pipeline(scheme).generate(1024, 256, 16);
    }
    let first_pass = session.cache_stats();
    for scheme in [QuantScheme::vq_llm_4bit(), QuantScheme::vq_llm_2bit()] {
        session.pipeline(scheme).generate(1024, 256, 16);
    }
    let second_pass = session.cache_stats();
    assert_eq!(second_pass.misses, first_pass.misses, "no re-planning");
    assert!(second_pass.hits > first_pass.hits);
}
