//! Property-based parity suite for the real host-execution backend.
//!
//! Every `CpuBackend` kernel (and the decode-orientation LUT GeMV it is
//! built from) is pinned to the `vqllm-tensor::linalg` oracles across
//! randomized VQ configurations — residual rounds, all three codebook
//! scopes, lattice on/off — and randomized shapes/seeds. The fused host
//! kernels compute directly on packed codes, so these tests are the
//! evidence that "no materialized weight matrix" loses no precision
//! beyond f32 summation-order noise (1e-4 relative tolerance).

use proptest::prelude::*;
use std::sync::Arc;
use vq_llm::kernels::host_exec::{self, HostBlocking};
use vq_llm::tensor::{linalg, metrics, synth};
use vq_llm::vq::config::CodebookScope;
use vq_llm::vq::VqQuantizer;
use vq_llm::{Backend, BackendKind, ComputeOp, CpuBackend, GpuSpec, KernelPlan, Session, VqConfig};

/// The randomized configuration space: residuals × scopes × lattice.
fn config(case: usize) -> VqConfig {
    match case % 8 {
        0 => VqConfig::new(2, 16, 1, CodebookScope::PerTensor).unwrap(),
        1 => VqConfig::new(4, 16, 2, CodebookScope::PerTensor).unwrap(),
        2 => VqConfig::new(4, 32, 1, CodebookScope::PerChannelGroup { channels: 4 }).unwrap(),
        3 => VqConfig::new(2, 16, 2, CodebookScope::PerChannelGroup { channels: 2 }).unwrap(),
        4 => VqConfig::new(4, 16, 1, CodebookScope::PerTile { rows: 16, cols: 16 }).unwrap(),
        5 => VqConfig::new_lattice(4, 256, 16, 1, CodebookScope::PerTensor).unwrap(),
        6 => VqConfig::new_lattice(4, 256, 16, 2, CodebookScope::PerTensor).unwrap(),
        _ => VqConfig::new(8, 16, 1, CodebookScope::PerTensor).unwrap(),
    }
}

fn dims(rows_i: usize, cols_i: usize) -> (usize, usize) {
    ([32, 48, 64][rows_i % 3], [16, 32][cols_i % 2])
}

fn quantize(cfg: VqConfig, rows: usize, cols: usize, seed: u64) -> vq_llm::vq::QuantizedTensor {
    let w = synth::correlated_channels(rows, cols, cfg.vector_size, 0.9, seed);
    VqQuantizer::new(cfg).quantize(&w, seed).expect("quantize")
}

/// Any launchable plan for the op (the host kernels only read blocking
/// hints from it, so the rung doesn't matter for correctness).
fn plan_for(cfg: &VqConfig, op: &ComputeOp) -> Option<KernelPlan> {
    let backend = CpuBackend::new();
    let profile = vq_llm::kernels::AccessProfile::default_for(cfg);
    backend
        .best_plan(&GpuSpec::rtx4090(), cfg, op, &profile)
        .map(|(plan, _)| plan)
        .ok()
}

proptest! {
    /// `CpuBackend::run_gemv` (`y = xᵀ · dequant(Wq)`) vs the dequantize
    /// oracle.
    #[test]
    fn cpu_gemv_matches_oracle(
        case in 0usize..8,
        rows_i in 0usize..3,
        cols_i in 0usize..2,
        seed in 0u64..500,
    ) {
        let cfg = config(case);
        let (rows, cols) = dims(rows_i, cols_i);
        let wq = quantize(cfg, rows, cols, seed);
        let x: Vec<f32> = (0..rows).map(|i| ((i as f32) * 0.37 + seed as f32).sin()).collect();
        let op = ComputeOp::Gemv { n: cols, k: rows, batch: 1 };
        let Some(plan) = plan_for(&cfg, &op) else { return Ok(()); };
        // Exercise the sequential path and the persistent-pool path at the
        // partition counts the serving layer will use.
        let threads = [1, 2, 4][(seed as usize) % 3];
        let (y, out) = CpuBackend::with_threads(threads)
            .run_gemv(&GpuSpec::rtx4090(), &plan, &x, &wq)
            .expect("run_gemv");
        let oracle = linalg::gemv(&wq.dequantize().unwrap().transposed(), &x).unwrap();
        prop_assert!(metrics::allclose(&y, &oracle, 1e-4, 1e-4), "{cfg} {rows}x{cols}");
        prop_assert!(out.us() > 0.0);
    }

    /// The decode-orientation LUT GeMV (`y = dequant(Wq) · x`) vs the
    /// dequantize oracle.
    #[test]
    fn lut_gemv_matches_oracle(
        case in 0usize..8,
        rows_i in 0usize..3,
        cols_i in 0usize..2,
        seed in 0u64..500,
    ) {
        let cfg = config(case);
        let (rows, cols) = dims(rows_i, cols_i);
        let wq = quantize(cfg, rows, cols, seed);
        let x: Vec<f32> = (0..cols).map(|i| ((i as f32) * 0.23 + seed as f32).cos()).collect();
        let blocking = HostBlocking {
            // Exercise many slab splits, including degenerate ones.
            slab_bytes: [1usize, 1 << 10, 32 << 10][(seed as usize) % 3],
            threads: [1, 2, 4][(seed as usize) % 3],
        };
        let y = host_exec::gemv_lut(&wq, &x, &blocking).expect("gemv_lut");
        let oracle = linalg::gemv(&wq.dequantize().unwrap(), &x).unwrap();
        prop_assert!(metrics::allclose(&y, &oracle, 1e-4, 1e-4), "{cfg} {rows}x{cols}");
    }

    /// The batched LUT GeMV (`Y = dequant(Wq) · Xᵀ`, the serving-layer
    /// multi-token decode shape) vs per-column dequantize oracles, across
    /// batch sizes, slab splits, and pool partition counts.
    #[test]
    fn lut_gemv_batch_matches_oracle(
        case in 0usize..8,
        rows_i in 0usize..3,
        cols_i in 0usize..2,
        batch in 1usize..9,
        seed in 0u64..500,
    ) {
        let cfg = config(case);
        let (rows, cols) = dims(rows_i, cols_i);
        let wq = quantize(cfg, rows, cols, seed);
        let acts = vq_llm::tensor::Tensor2D::from_fn(batch, cols, |b, c| {
            ((b * 13 + c) as f32 * 0.23 + seed as f32).cos()
        });
        let blocking = HostBlocking {
            slab_bytes: [1usize, 1 << 10, 32 << 10][(seed as usize) % 3],
            threads: [1, 2, 4][(seed as usize + 1) % 3],
        };
        let y = host_exec::gemv_lut_batch(&wq, &acts, &blocking).expect("gemv_lut_batch");
        prop_assert_eq!(y.shape(), (rows, batch));
        let w = wq.dequantize().unwrap();
        for b in 0..batch {
            let oracle = linalg::gemv(&w, acts.row(b)).unwrap();
            let col: Vec<f32> = (0..rows).map(|r| y.get(r, b)).collect();
            prop_assert!(
                metrics::allclose(&col, &oracle, 1e-4, 1e-4),
                "{} {}x{} batch {} lane {}", cfg, rows, cols, batch, b
            );
        }
    }

    /// `CpuBackend::run_gemm` (`C = A × dequant(Wq)`) vs the dequantize
    /// oracle.
    #[test]
    fn cpu_gemm_matches_oracle(
        case in 0usize..8,
        rows_i in 0usize..3,
        m in 1usize..9,
        seed in 0u64..500,
    ) {
        let cfg = config(case);
        let (rows, cols) = dims(rows_i, 1);
        let wq = quantize(cfg, rows, cols, seed);
        let a = synth::gaussian(m, rows, 1.0, seed ^ 0xa5);
        let op = ComputeOp::Gemm { m, n: cols, k: rows };
        let Some(plan) = plan_for(&cfg, &op) else { return Ok(()); };
        // m in 1..9 crosses the 6-row micro-kernel boundary, and the
        // thread counts cover the column-strip pool path of the
        // panel-blocked GeMM.
        let (c, _) = CpuBackend::with_threads([1, 2, 4][(seed as usize) % 3])
            .run_gemm(&GpuSpec::rtx4090(), &plan, &a, &wq)
            .expect("run_gemm");
        let oracle = linalg::matmul(&a, &wq.dequantize().unwrap()).unwrap();
        prop_assert!(
            metrics::allclose(c.as_slice(), oracle.as_slice(), 1e-4, 1e-4),
            "{cfg} {rows}x{cols} m={m}"
        );
    }

    /// Ragged `CpuBackend::run_attention_ragged` (per-query softmax
    /// lengths over shared K/V — mask/short-seq tenants) vs looping the
    /// single-query fused path over row-truncated caches.
    #[test]
    fn ragged_attention_batch_matches_looped_single(
        case in 0usize..8,
        rows_i in 0usize..3,
        cols_i in 0usize..2,
        batch in 1usize..6,
        seed in 0u64..500,
    ) {
        let cfg = config(case);
        let (seq, head_dim) = dims(rows_i, cols_i);
        let kq = quantize(cfg, seq, head_dim, seed);
        let vq = quantize(cfg, seq, head_dim, seed ^ 0x3333);
        let qs = vq_llm::tensor::Tensor2D::from_fn(batch, head_dim, |b, d| {
            ((b * 23 + d) as f32 * 0.29 + seed as f32).sin()
        });
        // Lengths spread over the whole range, always including one
        // full-length tenant so the unmasked path is co-tested.
        let lens: Vec<usize> = (0..batch)
            .map(|b| if b == 0 { seq } else { 1 + (seed as usize * 31 + b * 97) % seq })
            .collect();
        let op = ComputeOp::attention_decode(1, head_dim, seq, batch);
        let Some(plan) = plan_for(&cfg, &op) else { return Ok(()); };
        let backend = CpuBackend::with_threads([1, 2, 4][(seed as usize) % 3]);
        let gpu = GpuSpec::rtx4090();
        let (out, _) = backend
            .run_attention_ragged(&gpu, &plan, &qs, &lens, &kq, &vq)
            .expect("run_attention_ragged");
        prop_assert_eq!(out.shape(), (batch, head_dim));
        let kd = kq.dequantize().unwrap();
        let vd = vq.dequantize().unwrap();
        let scale = 1.0 / (head_dim as f32).sqrt();
        for (b, &len) in lens.iter().enumerate() {
            // The looped single-query oracle: reference attention over the
            // cache truncated to this tenant's prefix.
            let oracle = linalg::attention_decode_ref(
                qs.row(b),
                &kd.slice(0, 0, len, head_dim),
                &vd.slice(0, 0, len, head_dim),
                scale,
            )
            .unwrap();
            prop_assert!(
                metrics::allclose(out.row(b), &oracle, 1e-4, 1e-4),
                "{} {}x{} lane {} len {}", cfg, seq, head_dim, b, len
            );
        }
        // The full-length lane must match the unmasked batch kernel
        // bitwise (same arithmetic path).
        let (full, _) = backend
            .run_attention_batch(&gpu, &plan, &qs, &kq, &vq)
            .expect("run_attention_batch");
        prop_assert_eq!(out.row(0), full.row(0));
    }

    /// The serving layer's replan guarantee rests on this invariant: host
    /// kernel output is **bitwise** independent of the blocking hints a
    /// plan supplies (slab budget across the full clamp range, worker
    /// partitions). A profile-shift replan only changes blocking hints,
    /// so it can never change decoded bytes.
    #[test]
    fn kernel_bytes_are_blocking_independent(
        case in 0usize..8,
        rows_i in 0usize..3,
        cols_i in 0usize..2,
        batch in 1usize..5,
        seed in 0u64..500,
    ) {
        let cfg = config(case);
        let (seq, head_dim) = dims(rows_i, cols_i);
        let kq = quantize(cfg, seq, head_dim, seed);
        let vq = quantize(cfg, seq, head_dim, seed ^ 0x5a5a);
        let qs = vq_llm::tensor::Tensor2D::from_fn(batch, head_dim, |b, d| {
            ((b * 19 + d) as f32 * 0.27 + seed as f32).sin()
        });
        let a = vq_llm::tensor::Tensor2D::from_fn(batch, seq, |b, d| {
            ((b * 11 + d) as f32 * 0.17 + seed as f32).cos()
        });
        let lens: Vec<usize> = (0..batch)
            .map(|b| if b == 0 { seq } else { 1 + (seed as usize * 13 + b * 89) % seq })
            .collect();
        // The HostBlocking clamp range is [16 KiB, 256 KiB]; cover both
        // extremes, a mid-range slab, and 1/2/4 worker partitions.
        let blockings = [
            HostBlocking { slab_bytes: 16 << 10, threads: 1 },
            HostBlocking { slab_bytes: 48 << 10, threads: 2 },
            HostBlocking { slab_bytes: 256 << 10, threads: 4 },
        ];
        let base_attn =
            host_exec::attention_decode_ragged(&qs, &lens, &kq, &vq, &blockings[0]).unwrap();
        let base_gemm = host_exec::gemm_fused(&a, &kq, &blockings[0]).unwrap();
        for b in &blockings[1..] {
            let attn = host_exec::attention_decode_ragged(&qs, &lens, &kq, &vq, b).unwrap();
            let gemm = host_exec::gemm_fused(&a, &kq, b).unwrap();
            prop_assert_eq!(
                base_attn.as_slice(),
                attn.as_slice(),
                "attention bytes depend on blocking {:?} ({} {}x{})", b, cfg, seq, head_dim
            );
            prop_assert_eq!(
                base_gemm.as_slice(),
                gemm.as_slice(),
                "gemm bytes depend on blocking {:?} ({} {}x{})", b, cfg, seq, head_dim
            );
        }
    }

    /// `CpuBackend::run_attention_head` vs the reference decode attention.
    #[test]
    fn cpu_attention_matches_oracle(
        case in 0usize..8,
        rows_i in 0usize..3,
        cols_i in 0usize..2,
        seed in 0u64..500,
    ) {
        let cfg = config(case);
        let (seq, head_dim) = dims(rows_i, cols_i);
        let kq = quantize(cfg, seq, head_dim, seed);
        let vq = quantize(cfg, seq, head_dim, seed ^ 0x7777);
        let q: Vec<f32> = (0..head_dim).map(|i| ((i as f32) * 0.31 + seed as f32).sin()).collect();
        let op = ComputeOp::attention_decode(1, head_dim, seq, 1);
        let Some(plan) = plan_for(&cfg, &op) else { return Ok(()); };
        let (out, _) = CpuBackend::with_threads([1, 2, 4][(seed as usize) % 3])
            .run_attention_head(&GpuSpec::rtx4090(), &plan, &q, &kq, &vq)
            .expect("run_attention_head");
        let scale = 1.0 / (head_dim as f32).sqrt();
        let oracle = linalg::attention_decode_ref(
            &q,
            &kq.dequantize().unwrap(),
            &vq.dequantize().unwrap(),
            scale,
        )
        .unwrap();
        prop_assert!(metrics::allclose(&out, &oracle, 1e-4, 1e-4), "{cfg} {seq}x{head_dim}");
    }
}

/// The whole stack through the facade: a CPU-backend session executes the
/// same fused kernels and matches the oracle end to end.
#[test]
fn cpu_session_runs_fused_kernels() {
    let session = Session::builder()
        .backend_kind(BackendKind::Cpu { threads: 2 })
        .weight_algo(vq_llm::VqAlgorithm::Gptvq2)
        .build()
        .expect("valid session");
    assert_eq!(session.backend().name(), "cpu");

    let w = synth::correlated_channels(256, 64, 4, 0.9, 3);
    let wq = session.quantize_weights(&w, 11).unwrap();
    let x: Vec<f32> = (0..256).map(|i| (i as f32 * 0.13).sin()).collect();
    let plan = session
        .weight_plan(&ComputeOp::Gemv {
            n: 64,
            k: 256,
            batch: 1,
        })
        .unwrap();
    let (y, out) = session.run_gemv(&plan, &x, &wq).unwrap();
    let oracle = linalg::gemv(&wq.dequantize().unwrap().transposed(), &x).unwrap();
    assert!(metrics::allclose(&y, &oracle, 1e-4, 1e-4));
    assert!(out.us() > 0.0);

    // Batched decode attention through the facade: the CPU backend's
    // fused batch kernel vs its own per-query path.
    let kd = synth::kv_stream(320, 64, 0.8, 4);
    let vd = synth::kv_stream(320, 64, 0.8, 5);
    let kq = session.quantize_kv(&kd, 1).unwrap();
    let vq = session.quantize_kv(&vd, 2).unwrap();
    let (kv_plan, _) = session.best_kv_plan(&session.attention_op(320, 2)).unwrap();
    let qs = vq_llm::tensor::Tensor2D::from_fn(2, 64, |b, d| ((b * 7 + d) as f32 * 0.21).sin());
    let (batch_out, _) = session
        .run_attention_batch(&kv_plan, &qs, &kq, &vq)
        .unwrap();
    assert_eq!(batch_out.shape(), (2, 64));
    for b in 0..2 {
        let (single, _) = session
            .run_attention_head(&kv_plan, qs.row(b), &kq, &vq)
            .unwrap();
        assert!(
            metrics::allclose(batch_out.row(b), &single, 1e-4, 1e-4),
            "query {b}"
        );
    }

    // The session's pipelines inherit the backend, including the real
    // execution hooks.
    let pipeline = session.pipeline(session.scheme());
    assert_eq!(pipeline.backend().name(), "cpu");
    assert!(pipeline.generate(512, 64, 4).total_ms() > 0.0);
    let acts = vq_llm::tensor::Tensor2D::from_fn(3, 256, |b, i| ((b + i) as f32 * 0.17).cos());
    let (y_batch, _) = pipeline
        .run_linear(&acts, &wq)
        .expect("pipeline run_linear");
    let oracle_b = linalg::matmul(&acts, &wq.dequantize().unwrap()).unwrap();
    assert!(metrics::allclose(
        y_batch.as_slice(),
        oracle_b.as_slice(),
        1e-4,
        1e-4
    ));

    // An explicit Arc-ed backend and the cpu_threads shortcut work the
    // same way.
    let session2 = Session::builder()
        .backend(Arc::new(CpuBackend::auto()))
        .build()
        .expect("valid session");
    assert_eq!(session2.backend().name(), "cpu");
    let session3 = Session::builder()
        .cpu_threads(0)
        .build()
        .expect("valid session");
    assert_eq!(session3.backend().name(), "cpu");
}
