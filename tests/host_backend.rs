//! Property-based parity suite for the real host-execution backend.
//!
//! Every `CpuBackend` kernel (and the decode-orientation LUT GeMV it is
//! built from) is pinned to the `vqllm-tensor::linalg` oracles across
//! randomized VQ configurations — residual rounds, all three codebook
//! scopes, lattice on/off — and randomized shapes/seeds. The fused host
//! kernels compute directly on packed codes, so these tests are the
//! evidence that "no materialized weight matrix" loses no precision
//! beyond f32 summation-order noise (1e-4 relative tolerance).

use proptest::prelude::*;
use std::sync::Arc;
use vq_llm::kernels::host_exec::{self, HostBlocking};
use vq_llm::tensor::{linalg, metrics, synth};
use vq_llm::vq::config::CodebookScope;
use vq_llm::vq::VqQuantizer;
use vq_llm::{Backend, BackendKind, ComputeOp, CpuBackend, GpuSpec, KernelPlan, Session, VqConfig};

/// The randomized configuration space: residuals × scopes × lattice.
fn config(case: usize) -> VqConfig {
    match case % 8 {
        0 => VqConfig::new(2, 16, 1, CodebookScope::PerTensor).unwrap(),
        1 => VqConfig::new(4, 16, 2, CodebookScope::PerTensor).unwrap(),
        2 => VqConfig::new(4, 32, 1, CodebookScope::PerChannelGroup { channels: 4 }).unwrap(),
        3 => VqConfig::new(2, 16, 2, CodebookScope::PerChannelGroup { channels: 2 }).unwrap(),
        4 => VqConfig::new(4, 16, 1, CodebookScope::PerTile { rows: 16, cols: 16 }).unwrap(),
        5 => VqConfig::new_lattice(4, 256, 16, 1, CodebookScope::PerTensor).unwrap(),
        6 => VqConfig::new_lattice(4, 256, 16, 2, CodebookScope::PerTensor).unwrap(),
        _ => VqConfig::new(8, 16, 1, CodebookScope::PerTensor).unwrap(),
    }
}

fn dims(rows_i: usize, cols_i: usize) -> (usize, usize) {
    ([32, 48, 64][rows_i % 3], [16, 32][cols_i % 2])
}

fn quantize(cfg: VqConfig, rows: usize, cols: usize, seed: u64) -> vq_llm::vq::QuantizedTensor {
    let w = synth::correlated_channels(rows, cols, cfg.vector_size, 0.9, seed);
    VqQuantizer::new(cfg).quantize(&w, seed).expect("quantize")
}

/// Any launchable plan for the op (the host kernels only read blocking
/// hints from it, so the rung doesn't matter for correctness).
fn plan_for(cfg: &VqConfig, op: &ComputeOp) -> Option<KernelPlan> {
    let backend = CpuBackend::new();
    let profile = vq_llm::kernels::AccessProfile::default_for(cfg);
    backend
        .best_plan(&GpuSpec::rtx4090(), cfg, op, &profile)
        .map(|(plan, _)| plan)
        .ok()
}

proptest! {
    /// `CpuBackend::run_gemv` (`y = xᵀ · dequant(Wq)`) vs the dequantize
    /// oracle.
    #[test]
    fn cpu_gemv_matches_oracle(
        case in 0usize..8,
        rows_i in 0usize..3,
        cols_i in 0usize..2,
        seed in 0u64..500,
    ) {
        let cfg = config(case);
        let (rows, cols) = dims(rows_i, cols_i);
        let wq = quantize(cfg, rows, cols, seed);
        let x: Vec<f32> = (0..rows).map(|i| ((i as f32) * 0.37 + seed as f32).sin()).collect();
        let op = ComputeOp::Gemv { n: cols, k: rows, batch: 1 };
        let Some(plan) = plan_for(&cfg, &op) else { return Ok(()); };
        let threads = 1 + (seed as usize) % 3;
        let (y, out) = CpuBackend::with_threads(threads)
            .run_gemv(&GpuSpec::rtx4090(), &plan, &x, &wq)
            .expect("run_gemv");
        let oracle = linalg::gemv(&wq.dequantize().unwrap().transposed(), &x).unwrap();
        prop_assert!(metrics::allclose(&y, &oracle, 1e-4, 1e-4), "{cfg} {rows}x{cols}");
        prop_assert!(out.us() > 0.0);
    }

    /// The decode-orientation LUT GeMV (`y = dequant(Wq) · x`) vs the
    /// dequantize oracle.
    #[test]
    fn lut_gemv_matches_oracle(
        case in 0usize..8,
        rows_i in 0usize..3,
        cols_i in 0usize..2,
        seed in 0u64..500,
    ) {
        let cfg = config(case);
        let (rows, cols) = dims(rows_i, cols_i);
        let wq = quantize(cfg, rows, cols, seed);
        let x: Vec<f32> = (0..cols).map(|i| ((i as f32) * 0.23 + seed as f32).cos()).collect();
        let blocking = HostBlocking {
            // Exercise many slab splits, including degenerate ones.
            slab_bytes: [1usize, 1 << 10, 32 << 10][(seed as usize) % 3],
            threads: 1 + (seed as usize) % 3,
        };
        let y = host_exec::gemv_lut(&wq, &x, &blocking).expect("gemv_lut");
        let oracle = linalg::gemv(&wq.dequantize().unwrap(), &x).unwrap();
        prop_assert!(metrics::allclose(&y, &oracle, 1e-4, 1e-4), "{cfg} {rows}x{cols}");
    }

    /// `CpuBackend::run_gemm` (`C = A × dequant(Wq)`) vs the dequantize
    /// oracle.
    #[test]
    fn cpu_gemm_matches_oracle(
        case in 0usize..8,
        rows_i in 0usize..3,
        m in 1usize..9,
        seed in 0u64..500,
    ) {
        let cfg = config(case);
        let (rows, cols) = dims(rows_i, 1);
        let wq = quantize(cfg, rows, cols, seed);
        let a = synth::gaussian(m, rows, 1.0, seed ^ 0xa5);
        let op = ComputeOp::Gemm { m, n: cols, k: rows };
        let Some(plan) = plan_for(&cfg, &op) else { return Ok(()); };
        let (c, _) = CpuBackend::with_threads(1 + (seed as usize) % 4)
            .run_gemm(&GpuSpec::rtx4090(), &plan, &a, &wq)
            .expect("run_gemm");
        let oracle = linalg::matmul(&a, &wq.dequantize().unwrap()).unwrap();
        prop_assert!(
            metrics::allclose(c.as_slice(), oracle.as_slice(), 1e-4, 1e-4),
            "{cfg} {rows}x{cols} m={m}"
        );
    }

    /// `CpuBackend::run_attention_head` vs the reference decode attention.
    #[test]
    fn cpu_attention_matches_oracle(
        case in 0usize..8,
        rows_i in 0usize..3,
        cols_i in 0usize..2,
        seed in 0u64..500,
    ) {
        let cfg = config(case);
        let (seq, head_dim) = dims(rows_i, cols_i);
        let kq = quantize(cfg, seq, head_dim, seed);
        let vq = quantize(cfg, seq, head_dim, seed ^ 0x7777);
        let q: Vec<f32> = (0..head_dim).map(|i| ((i as f32) * 0.31 + seed as f32).sin()).collect();
        let op = ComputeOp::attention_decode(1, head_dim, seq, 1);
        let Some(plan) = plan_for(&cfg, &op) else { return Ok(()); };
        let (out, _) = CpuBackend::with_threads(1 + (seed as usize) % 3)
            .run_attention_head(&GpuSpec::rtx4090(), &plan, &q, &kq, &vq)
            .expect("run_attention_head");
        let scale = 1.0 / (head_dim as f32).sqrt();
        let oracle = linalg::attention_decode_ref(
            &q,
            &kq.dequantize().unwrap(),
            &vq.dequantize().unwrap(),
            scale,
        )
        .unwrap();
        prop_assert!(metrics::allclose(&out, &oracle, 1e-4, 1e-4), "{cfg} {seq}x{head_dim}");
    }
}

/// The whole stack through the facade: a CPU-backend session executes the
/// same fused kernels and matches the oracle end to end.
#[test]
fn cpu_session_runs_fused_kernels() {
    let session = Session::builder()
        .backend_kind(BackendKind::Cpu { threads: 2 })
        .weight_algo(vq_llm::VqAlgorithm::Gptvq2)
        .build()
        .expect("valid session");
    assert_eq!(session.backend().name(), "cpu");

    let w = synth::correlated_channels(256, 64, 4, 0.9, 3);
    let wq = session.quantize_weights(&w, 11).unwrap();
    let x: Vec<f32> = (0..256).map(|i| (i as f32 * 0.13).sin()).collect();
    let plan = session
        .weight_plan(&ComputeOp::Gemv {
            n: 64,
            k: 256,
            batch: 1,
        })
        .unwrap();
    let (y, out) = session.run_gemv(&plan, &x, &wq).unwrap();
    let oracle = linalg::gemv(&wq.dequantize().unwrap().transposed(), &x).unwrap();
    assert!(metrics::allclose(&y, &oracle, 1e-4, 1e-4));
    assert!(out.us() > 0.0);

    // The session's pipelines inherit the backend.
    let pipeline = session.pipeline(session.scheme());
    assert_eq!(pipeline.backend().name(), "cpu");
    assert!(pipeline.generate(512, 64, 4).total_ms() > 0.0);

    // An explicit Arc-ed backend works the same way.
    let session2 = Session::builder()
        .backend(Arc::new(CpuBackend::auto()))
        .build()
        .expect("valid session");
    assert_eq!(session2.backend().name(), "cpu");
}
